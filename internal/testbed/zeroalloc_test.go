package testbed

import (
	"testing"

	"packetmill/internal/click"
	"packetmill/internal/nf"
	"packetmill/internal/trace"
	"packetmill/internal/trafficgen"
)

// The zero-allocation gate: once warm, the steady-state forwarding loop
// (EtherMirror over the campus mix) must not allocate per packet. Every
// layer this exercises — the PMD burst, the element scratch batches, the
// NIC descriptor rings, the buffer pools — recycles fixed storage, so a
// regression here means a heap allocation crept back into the datapath.

// campusFrames pre-generates n owned frames from the campus mix so frame
// generation is excluded from the allocation measurement.
func campusFrames(n int) [][]byte {
	src := trafficgen.NewCampus(trafficgen.Config{Seed: 7, RateGbps: 100, Count: n})
	frames := make([][]byte, 0, n)
	for {
		f, _, ok := src.Next()
		if !ok {
			break
		}
		frames = append(frames, append([]byte(nil), f...))
	}
	return frames
}

// mirrorRig assembles a one-core DUT running the Listing 3 EtherMirror
// forwarder under the given metadata model.
func mirrorRig(t testing.TB, model click.MetadataModel) (*DUT, *clickEngine) {
	t.Helper()
	return mirrorRigOpts(t, Options{Model: model})
}

// mirrorRigOpts is mirrorRig with full control over the options, so the
// gate can also run with the observability layers switched on.
func mirrorRigOpts(t testing.TB, o Options) (*DUT, *clickEngine) {
	t.Helper()
	o = o.withDefaults()
	d, err := NewDUT(o)
	if err != nil {
		t.Fatal(err)
	}
	g, err := click.Parse(nf.Mirror(0, 32))
	if err != nil {
		t.Fatal(err)
	}
	routers, err := d.BuildRouters(g)
	if err != nil {
		t.Fatal(err)
	}
	return d, &clickEngine{rt: routers[0], core: d.Cores[0]}
}

// pumpOne delivers one frame and steps the engine until the pipeline
// drains, fast-forwarding the core past the NIC's completion pacing.
func pumpOne(d *DUT, eng *clickEngine, frame []byte) {
	n, core := d.NICs[0], d.Cores[0]
	n.Deliver(0, frame, core.NowNS())
	for {
		for eng.Step(core, core.NowNS()) > 0 {
		}
		if n.RX(0).PendingCount() == 0 {
			return
		}
		if r := n.RX(0).NextReadyNS(); r > core.NowNS() {
			core.Idle(r)
		}
	}
}

func testSteadyStateZeroAllocs(t *testing.T, model click.MetadataModel, name string) {
	d, eng := mirrorRig(t, model)
	frames := campusFrames(512)
	if len(frames) < 300 {
		t.Fatalf("campus mix produced only %d frames", len(frames))
	}
	// Warm up: pools populate, rings fill, caches settle.
	for _, f := range frames[:256] {
		pumpOne(d, eng, f)
	}
	next := 256
	avg := testing.AllocsPerRun(50, func() {
		pumpOne(d, eng, frames[next%len(frames)])
		next++
	})
	if avg != 0 {
		t.Errorf("%s: steady-state forwarding allocates %.1f times per packet, want 0", name, avg)
	}
}

func TestSteadyStateZeroAllocsCopying(t *testing.T) {
	testSteadyStateZeroAllocs(t, click.Copying, "copying")
}

func TestSteadyStateZeroAllocsXChange(t *testing.T) {
	testSteadyStateZeroAllocs(t, click.XChange, "x-change")
}

// The observability gate: the flight recorder at its most aggressive
// setting (every packet sampled) plus full telemetry must still not
// allocate per packet once warm — the ring, the span stack, and the
// histograms are all fixed storage.
func TestSteadyStateZeroAllocsTraced(t *testing.T) {
	d, eng := mirrorRigOpts(t, Options{
		Model:     click.XChange,
		Telemetry: true,
		Trace:     trace.NewRecorder(trace.Config{SampleEvery: 1, Seed: 1}),
	})
	frames := campusFrames(512)
	for _, f := range frames[:256] {
		pumpOne(d, eng, f)
	}
	if got := d.Opts.Trace.Core(0).Sampled(); got == 0 {
		t.Fatal("recorder sampled nothing during warmup; the gate would measure an idle tracer")
	}
	next := 256
	avg := testing.AllocsPerRun(50, func() {
		pumpOne(d, eng, frames[next%len(frames)])
		next++
	})
	if avg != 0 {
		t.Errorf("traced steady-state forwarding allocates %.1f times per packet, want 0", avg)
	}
}

// BenchmarkSteadyStateForwarding reports the per-packet cost of the warm
// EtherMirror loop; run with -benchmem to watch the allocs/op gate.
func BenchmarkSteadyStateForwarding(b *testing.B) {
	d, eng := mirrorRig(b, click.XChange)
	frames := campusFrames(512)
	for _, f := range frames[:256] {
		pumpOne(d, eng, f)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pumpOne(d, eng, frames[i%len(frames)])
	}
}
