package testbed

import (
	"errors"
	"fmt"
	"testing"

	"packetmill/internal/click"
	"packetmill/internal/machine"
	"packetmill/internal/nf"
	"packetmill/internal/nic"
	"packetmill/internal/overload"
	"packetmill/internal/stats"
	"packetmill/internal/trafficgen"
)

// overloadRings is the adapter config the overload exhibits run with:
// rings small enough that admission control — not a 4096-deep buffer —
// is what bounds queueing delay under sustained overload.
func overloadRings() *nic.Config {
	cfg := nic.DefaultConfig("overload")
	cfg.RXRingSize = 256
	cfg.TXRingSize = 256
	return &cfg
}

// overloadNF is the CPU-bound workload the exhibits overload: the
// WorkPackage forwarder tuned so per-packet service time dwarfs the
// per-frame poll cost. That is the regime admission control is for — at
// 4× this NF's capacity the PMD can still shed at line rate, so loss
// happens at the RX boundary with attribution instead of as anonymous
// ring overruns. (A light NF at 4× outruns the shedder itself and the
// ring overflows before admission ever sees the frames.)
func overloadNF() string { return nf.WorkPackageForwarder(4, 16, 5, 200) }

// priorityConfig is the tuned control plane for the priority exhibits:
// tight watermarks keep the RX ring equilibrium shallow — the class-0
// shed threshold sits at a handful of frames, so an admitted
// high-priority frame queues behind very little — and the health
// thresholds sit below that equilibrium so the machine holds Degraded
// (shedder armed) for the duration of the overload.
func priorityConfig() *overload.Config {
	return &overload.Config{
		Policy:    overload.PolicyPriority,
		HighWater: 0.1,
		LowWater:  0.005,
		Health: overload.HealthConfig{
			DegradeOcc:  0.012,
			OverloadOcc: 0.6,
			RecoverOcc:  0.006,
			DwellNS:     5e3,
		},
	}
}

// TestOverloadPriorityExhibit is the acceptance exhibit: offer 4× the
// DUT's measured capacity with a 10% high-priority share, and check the
// priority shedder (a) sheds — at the RX boundary, fully attributed to
// the overload taxonomy — while (b) keeping the high-priority class's
// p99 latency within 2× of an uncontended run. Conservation must stay
// exact through all of it.
func TestOverloadPriorityExhibit(t *testing.T) {
	// Probe capacity: a saturating run; the achieved post-warmup
	// throughput is what the DUT can actually carry.
	probe, _, err := chaosRun(overloadNF(), Options{
		Model:     click.XChange,
		FreqGHz:   1.2,
		RateGbps:  100,
		Packets:   4000,
		NICConfig: overloadRings(),
		Seed:      5,
	})
	if err != nil {
		t.Fatal(err)
	}
	capGbps := float64(probe.Bytes) * 8 / probe.Duration
	if capGbps <= 0 || capGbps >= 50 {
		t.Fatalf("capacity probe implausible: %.1f Gbps", capGbps)
	}

	runMix := func(rateGbps float64) (*Result, *DUT) {
		t.Helper()
		res, d, err := chaosRun(overloadNF(), Options{
			Model:     click.XChange,
			FreqGHz:   1.2,
			RateGbps:  rateGbps,
			Packets:   6000,
			NICConfig: overloadRings(),
			Overload:  priorityConfig(),
			Telemetry: true,
			Seed:      5,
			Traffic: func(n int, cfg trafficgen.Config) trafficgen.Source {
				return trafficgen.NewPriorityMix(cfg, 0.1, 0xE0)
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		return res, d
	}

	// Uncontended baseline at half capacity: the control plane is armed
	// but essentially never pressed — transient queue blips may shed a
	// stray frame, but nothing systematic — and the hi-class p99 is the
	// latency budget the overloaded run is held to.
	base, baseDUT := runMix(0.5 * capGbps)
	checkInvariants(t, base, baseDUT)
	if sheds := base.Overload[0].Sheds; sheds > base.Offered/100 {
		t.Fatalf("uncontended run shed %d of %d frames", sheds, base.Offered)
	}
	baseHiP99 := base.ClassLat[7].Quantile(0.99)
	if baseHiP99 <= 0 {
		t.Fatalf("baseline recorded no high-priority latency (count %d)",
			base.ClassLat[7].Count())
	}

	// 4× capacity, sustained.
	over, overDUT := runMix(4 * capGbps)
	checkInvariants(t, over, overDUT)

	st := over.Overload[0]
	if st.Sheds == 0 {
		t.Fatal("4x overload shed nothing")
	}
	if got := over.DropsByReason.Get(stats.DropOverloadPrio); got != st.Sheds {
		t.Fatalf("shed attribution: controller counted %d, taxonomy booked %d under %s",
			st.Sheds, got, stats.DropOverloadPrio)
	}
	if st.Transitions == 0 {
		t.Fatal("health state machine never left healthy under 4x load")
	}
	if over.ClassLat[7].Count() == 0 {
		t.Fatal("no high-priority frames survived the overload")
	}
	overHiP99 := over.ClassLat[7].Quantile(0.99)
	if overHiP99 > 2*baseHiP99 {
		t.Fatalf("high-priority p99 %.0f ns exceeds 2x the uncontended %.0f ns",
			overHiP99, baseHiP99)
	}

	// The run-level report mirrors the controller, state names spelled out.
	if len(over.Telemetry.Overload) != 1 {
		t.Fatalf("telemetry carries %d overload entries, want 1", len(over.Telemetry.Overload))
	}
	rep := over.Telemetry.Overload[0]
	if rep.Policy != "priority" || rep.Sheds != st.Sheds {
		t.Fatalf("report disagrees with controller: %+v vs %+v", rep, st)
	}
}

// TestOverloadShedVsUncontrolled: against the same 4x load, tail-drop
// admission must convert NIC-level hardware drops (ring overrun, paid
// after descriptor posting) into RX-boundary sheds — the cheapest
// possible loss — without losing conservation.
func TestOverloadShedVsUncontrolled(t *testing.T) {
	run := func(cfg *overload.Config) (*Result, *DUT) {
		t.Helper()
		res, d, err := chaosRun(overloadNF(), Options{
			Model:     click.XChange,
			FreqGHz:   1.2,
			RateGbps:  40, // ~4x this NF's capacity
			Packets:   5000,
			NICConfig: overloadRings(),
			Overload:  cfg,
			Seed:      7,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res, d
	}
	unctl, d1 := run(nil)
	checkInvariants(t, unctl, d1)
	if unctl.DropsByReason.Get(stats.DropRxNoBuf)+unctl.DropsByReason.Get(stats.DropRxRingFull) == 0 {
		t.Fatal("uncontrolled 4x run saw no NIC-level drops; load is not overload")
	}

	ctld, d2 := run(&overload.Config{
		Policy:    overload.PolicyTailDrop,
		HighWater: 0.1,
		LowWater:  0.005,
		Health: overload.HealthConfig{
			DegradeOcc: 0.012, OverloadOcc: 0.6, RecoverOcc: 0.006, DwellNS: 5e3,
		},
	})
	checkInvariants(t, ctld, d2)
	if ctld.Overload[0].Sheds == 0 {
		t.Fatal("tail-drop admission shed nothing under 4x load")
	}
	if got := ctld.DropsByReason.Get(stats.DropOverloadShed); got != ctld.Overload[0].Sheds {
		t.Fatalf("shed attribution: controller %d vs taxonomy %d",
			ctld.Overload[0].Sheds, got)
	}
}

// TestLosslessBackpressurePausesRX drives a buffered pipeline (Queue
// between the PMD and the mirror) faster than its puller drains it,
// with lossless backpressure on: the Queue must raise pressure at the
// high watermark, the PMD RX must pause, and the interval must be
// accounted — with no mid-graph overload drops anywhere.
func TestLosslessBackpressurePausesRX(t *testing.T) {
	config := fmt.Sprintf(`
input :: FromDPDKDevice(PORT 0, N_QUEUES 1, BURST %d);
output :: ToDPDKDevice(PORT 0, BURST %d);
input -> Queue(CAPACITY 128) -> Unqueue(BURST 4) -> EtherMirror -> output;
`, 32, 32)
	res, d, err := chaosRun(config, Options{
		Model:     click.XChange,
		FreqGHz:   1.2,
		RateGbps:  100,
		Packets:   3000,
		FixedSize: 200,
		Overload: &overload.Config{
			Lossless:  true,
			HighWater: 0.5,
			LowWater:  0.2,
		},
		Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	checkInvariants(t, res, d)
	st := res.Overload[0]
	if st.Pauses == 0 {
		t.Fatal("lossless pipeline never paused RX")
	}
	if st.PausedNS <= 0 {
		t.Fatal("pause intervals not accounted")
	}
	if st.Raises < st.Pauses {
		t.Fatalf("raise accounting: %d raises < %d pauses", st.Raises, st.Pauses)
	}
	for _, r := range []stats.DropReason{
		stats.DropOverloadShed, stats.DropOverloadRED, stats.DropOverloadPrio,
	} {
		if n := res.DropsByReason.Get(r); n != 0 {
			t.Fatalf("lossless run booked %d drops under %s", n, r)
		}
	}
	if res.TxWire == 0 {
		t.Fatal("nothing forwarded")
	}
}

// TestWatchdogDrainRestartSelfHeals wedges the datapath the same way the
// StallError test does — a pathological slow receiver behind tiny rings —
// but with the control plane armed. The first watchdog trip must
// drain-and-restart instead of failing: flushed packets are booked under
// overload-restart, backpressure is released, the health machines land
// in recovering, and the run completes with conservation intact.
func TestWatchdogDrainRestartSelfHeals(t *testing.T) {
	res, d, err := chaosRun(nf.Mirror(0, 32), Options{
		Model:      click.Copying,
		Packets:    400,
		FixedSize:  64,
		RateGbps:   100,
		NICConfig:  smallRings(),
		Faults:     mustSched(t, "slowrx at=0 factor=1000000 for=3ms"),
		WatchdogNS: 1e6, // 1 simulated ms, well inside the 3 ms wedge
		Overload:   &overload.Config{Policy: overload.PolicyTailDrop},
		Seed:       3,
	})
	if err != nil {
		t.Fatalf("self-healing run failed: %v", err)
	}
	checkInvariants(t, res, d)
	if res.WatchdogRestarts == 0 {
		t.Fatal("watchdog never drain-restarted")
	}
	if res.DropsByReason.Get(stats.DropOverloadRestart) == 0 {
		t.Fatal("drain-restart flushed nothing into the overload-restart reason")
	}
}

// inertEngine never polls its queues — the one wedge a drain-and-restart
// cannot relieve, since there is nothing buffered to flush and nothing
// will ever move.
type inertEngine struct{}

func (inertEngine) Step(*machine.Core, float64) int { return 0 }

// TestWatchdogSecondTripStillFails: a wedge the restart cannot relieve
// must still surface as a StallError — self-healing is one retry per
// stall window, not an infinite loop. With a dead engine the RX ring
// stays pending forever, the restart drains nothing, and the second
// consecutive trip fails the run.
func TestWatchdogSecondTripStillFails(t *testing.T) {
	_, err := RunEngines(Options{
		Model:      click.Copying,
		Packets:    50,
		FixedSize:  64,
		RateGbps:   100,
		NICConfig:  smallRings(),
		WatchdogNS: 1e6,
		Overload:   &overload.Config{Policy: overload.PolicyTailDrop},
		Seed:       3,
	}, func(d *DUT, core int) (Engine, error) {
		return inertEngine{}, nil
	})
	var stall *StallError
	if !errors.As(err, &stall) {
		t.Fatalf("err = %v, want *StallError after the restart budget is spent", err)
	}
}

// TestSteadyStateZeroAllocsOverload: arming the control plane must not
// cost the datapath an allocation — admission runs on every received
// frame, and the observation path builds its signals on the stack.
func TestSteadyStateZeroAllocsOverload(t *testing.T) {
	d, eng := mirrorRigOpts(t, Options{
		Model:    click.XChange,
		Overload: &overload.Config{Policy: overload.PolicyTailDrop},
	})
	if d.Ctl(0) == nil {
		t.Fatal("control plane not armed")
	}
	frames := campusFrames(512)
	for _, f := range frames[:256] {
		pumpOne(d, eng, f)
	}
	if d.Ctl(0).Status(d.Cores[0].NowNS()).AdmitOK == 0 {
		t.Fatal("admission control saw no frames during warmup")
	}
	var lastPolls, lastEmpty uint64
	next := 256
	avg := testing.AllocsPerRun(50, func() {
		pumpOne(d, eng, frames[next%len(frames)])
		d.observeCore(eng, 0, d.Cores[0].NowNS(), &lastPolls, &lastEmpty)
		next++
	})
	if avg != 0 {
		t.Errorf("overload-armed steady state allocates %.1f times per packet, want 0", avg)
	}
}
