// Live metrics: folding the DUT's counters into trace.Snapshot values
// for the -metrics HTTP exporter while a wire session is serving. Every
// counter is single-writer per-core state: the 1-core serve loop owns
// all of it inline, and the multicore loop quiesces the cores behind the
// publish gate before snapshotting. Either way a snapshot is built
// without per-counter locks and published as an immutable value; scrape
// handlers only ever read published snapshots.
package testbed

import (
	"encoding/json"
	"strconv"
	"time"

	"packetmill/internal/click"
	"packetmill/internal/flowlog"
	"packetmill/internal/machine"
	"packetmill/internal/stats"
	"packetmill/internal/telemetry"
	"packetmill/internal/trace"
	"packetmill/internal/xchg"
)

// metricsInterval is the wall-clock cadence at which ServeWire publishes
// fresh snapshots to the exporter.
const metricsInterval = 500 * time.Millisecond

// publishMetrics builds and publishes a snapshot when the exporter is
// attached; a no-op otherwise.
func (d *DUT) publishMetrics(engines []Engine, elapsed time.Duration) {
	if d.Opts.Metrics == nil {
		return
	}
	d.Opts.Metrics.Publish(d.wireSnapshot(engines, elapsed))
}

// wireSnapshot assembles the exporter view: port counters, the drop
// taxonomy, queue depths, latency and per-element duration histograms,
// and the full telemetry report as JSON for /report.
func (d *DUT) wireSnapshot(engines []Engine, elapsed time.Duration) *trace.Snapshot {
	snap := &trace.Snapshot{}
	add := func(name, help, typ string, labels [][2]string, v float64) {
		snap.Samples = append(snap.Samples, trace.Sample{
			Name: name, Help: help, Type: typ, Labels: labels, Value: v,
		})
	}
	add("packetmill_uptime_seconds", "Wall time since serving started.",
		"gauge", nil, elapsed.Seconds())

	// Port counters and queue depths, in (core, port id) order so the
	// exposition text is deterministic.
	var drops stats.DropCounters
	e2e := trace.NewHist()
	for c := range d.PortsFor {
		for id := 0; id < d.Opts.NICs; id++ {
			port, ok := d.PortsFor[c][id]
			if !ok {
				continue
			}
			rxs := port.Dev.RXStats()
			txs := port.Dev.TXStats()
			pl := [][2]string{
				{"port", port.Dev.PortName()},
				{"queue", strconv.Itoa(port.Dev.QueueID())},
			}
			add("packetmill_rx_packets_total", "Frames the NIC delivered to the PMD.",
				"counter", pl, float64(rxs.Delivered))
			add("packetmill_rx_bytes_total", "Bytes the NIC delivered to the PMD.",
				"counter", pl, float64(rxs.Bytes))
			add("packetmill_tx_packets_total", "Frames sent on the wire.",
				"counter", pl, float64(txs.Sent))
			add("packetmill_tx_bytes_total", "Bytes sent on the wire.",
				"counter", pl, float64(txs.Bytes))
			add("packetmill_polls_total", "PMD receive polls.",
				"counter", pl, float64(port.Stats.Polls))
			add("packetmill_empty_polls_total", "PMD receive polls that found nothing.",
				"counter", pl, float64(port.Stats.EmptyPolls))
			for _, g := range [...]struct {
				ring string
				n    int
			}{
				{"posted_rx", port.Dev.PostedCount()},
				{"pending_rx", port.Dev.PendingCount()},
				{"inflight_tx", port.Dev.InflightCount()},
			} {
				add("packetmill_queue_depth",
					"Descriptors currently held in a device ring.", "gauge",
					[][2]string{pl[0], pl[1], {"ring", g.ring}}, float64(g.n))
			}
			if cb, ok := d.bindings[port].(*xchg.CustomBinding); ok {
				add("packetmill_xchg_desc_outstanding",
					"X-Change descriptors currently attached to buffers.",
					"gauge", pl, float64(cb.Pool.Outstanding()))
				add("packetmill_xchg_desc_max_outstanding",
					"High-water mark of attached X-Change descriptors.",
					"gauge", pl, float64(cb.Pool.MaxOutstanding))
				add("packetmill_xchg_desc_get_fails_total",
					"X-Change descriptor pool exhaustion events.",
					"counter", pl, float64(cb.Pool.GetFails))
			}
			drops.Add(stats.DropRxNoBuf, rxs.DropNoBuf)
			drops.Add(stats.DropRxRingFull, rxs.DropFull)
			drops.Add(stats.DropRxRunt, rxs.DropRunt)
			drops.Add(stats.DropTxRingFull, txs.DropFull)
			drops.Add(stats.DropTxTransient, txs.DropTransient)
			drops.Add(stats.DropTxOversize, txs.DropOversize)
			drops.Merge(&port.Drops)
			e2e.Merge(port.LatHist)
		}
	}
	backlog := 0
	for _, e := range engines {
		if ds, ok := e.(dropStatser); ok {
			drops.Merge(ds.DropStats())
		}
		if tb, ok := e.(txBacklogger); ok {
			backlog += tb.TxBacklog()
		}
	}
	add("packetmill_tx_backlog", "Packets queued behind full TX rings.",
		"gauge", nil, float64(backlog))
	// Overload control plane, one series per core (families appear only
	// when the control plane is armed).
	for c, ctl := range d.Ctls {
		st := ctl.Status(float64(elapsed))
		cl := [][2]string{{"core", strconv.Itoa(c)}}
		add("packetmill_health_state",
			"Overload health state (0 healthy, 1 degraded, 2 overloaded, 3 recovering).",
			"gauge", cl, float64(st.State))
		add("packetmill_health_transitions_total",
			"Health state-machine transitions.", "counter", cl, float64(st.Transitions))
		add("packetmill_overload_sheds_total",
			"Frames shed by RX admission control.", "counter", cl, float64(st.Sheds))
		add("packetmill_overload_admits_total",
			"Frames admitted past RX admission control.", "counter", cl, float64(st.AdmitOK))
		add("packetmill_backpressure_sources",
			"Stages currently holding backpressure on this core.",
			"gauge", cl, float64(ctl.PressureSources()))
		add("packetmill_backpressure_pauses_total",
			"RX pause intervals entered (lossless backpressure).",
			"counter", cl, float64(st.Pauses))
	}
	// Flow tables, one series set per tracking element (families appear
	// only when a stateful element is in the graph, so configs without
	// one keep their exposition unchanged).
	for c, eng := range engines {
		ce, ok := eng.(*clickEngine)
		if !ok {
			continue
		}
		for _, inst := range ce.rt.Instances {
			fr, ok := inst.El.(telemetry.FlowReporter)
			if !ok {
				continue
			}
			crep := fr.FlowReport()
			cl := [][2]string{{"core", strconv.Itoa(c)}, {"element", inst.Name}}
			add("packetmill_conntrack_entries", "Live flow-table entries.",
				"gauge", cl, float64(crep.FlowTableEntries))
			add("packetmill_conntrack_capacity", "Flow-table slab capacity.",
				"gauge", cl, float64(crep.Capacity))
			add("packetmill_conntrack_insertions_total", "Flows admitted to the table.",
				"counter", cl, float64(crep.Insertions))
			add("packetmill_conntrack_expirations_total", "Flows aged out by the timer wheel.",
				"counter", cl, float64(crep.Expirations))
			// Fixed class order keeps the exposition text deterministic.
			for _, class := range [...]string{"embryonic", "transient", "established"} {
				if n, ok := crep.Evictions[class]; ok {
					add("packetmill_conntrack_evictions_total",
						"Flows displaced under table pressure, by eviction class.",
						"counter", [][2]string{cl[0], cl[1], {"class", class}}, float64(n))
				}
			}
			add("packetmill_conntrack_refused_total",
				"Packets refused by the flow table (full or strict-invalid).",
				"counter", cl, float64(crep.RefusedFull+crep.RefusedInvalid))
			add("packetmill_conntrack_wheel_lag_seconds",
				"Worst timer-wheel lag behind the element clock.",
				"gauge", cl, crep.WheelLagUS/1e6)
			if crep.PortsInUse > 0 || crep.PortsRecycled > 0 {
				add("packetmill_nat_ports_in_use", "External NAT ports currently allocated.",
					"gauge", cl, float64(crep.PortsInUse))
				add("packetmill_nat_ports_recycled_total",
					"External NAT ports returned to the pool by expiry/eviction.",
					"counter", cl, float64(crep.PortsRecycled))
			}
		}
	}
	// Every reason is exported, including zero counts, so dashboards see
	// a stable family the moment the endpoint comes up.
	for r := stats.DropReason(0); r < stats.NumDropReasons; r++ {
		add("packetmill_drops_total", "Frames lost, by drop taxonomy reason.",
			"counter", [][2]string{{"reason", r.String()}}, float64(drops.Get(r)))
	}
	// Flow records: verdict roll-ups, top flows, and the /flows body
	// (families appear only when flow logging is armed).
	var flowRecs []flowlog.Record
	if d.Opts.FlowLog != nil {
		var txWire uint64
		for c := range d.PortsFor {
			for id := 0; id < d.Opts.NICs; id++ {
				if port, ok := d.PortsFor[c][id]; ok {
					txWire += port.Dev.TXStats().Sent
				}
			}
		}
		flowRecs = d.Opts.FlowLog.Records(&drops, txWire)
		sum := flowlog.Summarize(flowRecs)
		// One family at a time: the exposition format requires a family's
		// samples to stay contiguous.
		for v := flowlog.Verdict(0); v < flowlog.NumVerdicts; v++ {
			add("packetmill_flow_records", "Flow records in the current cut, by verdict.",
				"gauge", [][2]string{{"verdict", v.String()}}, float64(sum.Flows[v]))
		}
		for v := flowlog.Verdict(0); v < flowlog.NumVerdicts; v++ {
			add("packetmill_flow_packets_total", "Packets attributed to flow records, by verdict.",
				"counter", [][2]string{{"verdict", v.String()}}, float64(sum.Packets[v]))
		}
		for v := flowlog.Verdict(0); v < flowlog.NumVerdicts; v++ {
			add("packetmill_flow_bytes_total", "Bytes attributed to flow records, by verdict.",
				"counter", [][2]string{{"verdict", v.String()}}, float64(sum.Bytes[v]))
		}
		add("packetmill_flow_records_lost_total",
			"Closed-flow records rolled into aggregates because a per-core ring wrapped.",
			"counter", nil, float64(d.Opts.FlowLog.RecordsLost()))
		sampled, misses := d.Opts.FlowLog.LatencySampled()
		add("packetmill_flow_latency_samples_total",
			"TX depart-hook latency samples folded into live flows.",
			"counter", nil, float64(sampled))
		add("packetmill_flow_latency_misses_total",
			"TX depart-hook samples whose flow was no longer in any table.",
			"counter", nil, float64(misses))
		for rank, t := range flowlog.TopByBytes(flowRecs, 5) {
			add("packetmill_flow_top_bytes", "Largest flows of the current cut, by bytes.",
				"gauge", [][2]string{
					{"rank", strconv.Itoa(rank + 1)},
					{"flow", flowlog.FormatKey(t.Key)},
					{"verdict", t.Verdict.String()},
				}, float64(t.Bytes))
		}
		snap.FlowsJSONL = flowlog.JSONL(flowRecs)
	}

	if e2e.Count() > 0 {
		snap.Hists = append(snap.Hists, trace.PromHist(
			"packetmill_latency_seconds",
			"One-way RX-arrival to TX-departure latency through the DUT.",
			nil, e2e))
	}
	for c, t := range d.Trackers {
		for _, b := range t.Buckets() {
			if b.Dur.Count() == 0 {
				continue
			}
			snap.Hists = append(snap.Hists, trace.PromHist(
				"packetmill_element_duration_seconds",
				"Per-visit exclusive element duration.",
				[][2]string{
					{"core", strconv.Itoa(c)},
					{"element", b.Name},
					{"stage", b.Stage.String()},
				}, b.Dur))
		}
	}

	snap.ReportJSON = d.wireReportJSON(engines, elapsed, &drops, e2e, flowRecs)
	return snap
}

// wireLedger folds the wire session's device, PMD, and engine drop
// counters into one ledger plus the wire TX total — the denominators
// the flow log reconciles against.
func (d *DUT) wireLedger(engines []Engine) (stats.DropCounters, uint64) {
	var drops stats.DropCounters
	var txWire uint64
	for c := range d.PortsFor {
		for id := 0; id < d.Opts.NICs; id++ {
			port, ok := d.PortsFor[c][id]
			if !ok {
				continue
			}
			rxs, txs := port.Dev.RXStats(), port.Dev.TXStats()
			txWire += txs.Sent
			drops.Add(stats.DropRxNoBuf, rxs.DropNoBuf)
			drops.Add(stats.DropRxRingFull, rxs.DropFull)
			drops.Add(stats.DropRxRunt, rxs.DropRunt)
			drops.Add(stats.DropTxRingFull, txs.DropFull)
			drops.Add(stats.DropTxTransient, txs.DropTransient)
			drops.Add(stats.DropTxOversize, txs.DropOversize)
			drops.Merge(&port.Drops)
		}
	}
	for _, e := range engines {
		if ds, ok := e.(dropStatser); ok {
			drops.Merge(ds.DropStats())
		}
	}
	return drops, txWire
}

// WireFlowRecords assembles the flow-record cut of a finished wire
// session, reconciled against the session's drop ledger and TX total.
// Nil when flow logging is not armed.
func (d *DUT) WireFlowRecords() []flowlog.Record {
	if d.Opts.FlowLog == nil {
		return nil
	}
	drops, txWire := d.wireLedger(d.wireEngines)
	return d.Opts.FlowLog.Records(&drops, txWire)
}

// wireReportJSON renders the same telemetry.Report a -report json run
// would emit, against the session so far, for the exporter's /report
// endpoint. Returns nil (the exporter serves "{}") when telemetry is off.
func (d *DUT) wireReportJSON(engines []Engine, elapsed time.Duration,
	drops *stats.DropCounters, e2e *trace.Hist, flowRecs []flowlog.Record) []byte {
	if !d.Opts.Telemetry {
		return nil
	}
	res := &Result{Latency: stats.NewLatencyRecorder(1)}
	res.Duration = float64(elapsed)
	// Engine index == core index on every wire path, so keep nil
	// placeholders for non-Click engines to preserve the mapping.
	for _, e := range engines {
		var rt *click.Router
		if ce, ok := e.(*clickEngine); ok {
			rt = ce.rt
		}
		res.Routers = append(res.Routers, rt)
	}
	var agg machine.Counters
	for c := range d.PortsFor {
		for id := 0; id < d.Opts.NICs; id++ {
			port, ok := d.PortsFor[c][id]
			if !ok {
				continue
			}
			rxs := port.Dev.RXStats()
			txs := port.Dev.TXStats()
			res.Offered += rxs.Delivered + rxs.DropNoBuf + rxs.DropFull + rxs.DropRunt
			res.Packets += txs.Sent
			res.Bytes += txs.Bytes
			res.TxWire += txs.Sent
		}
	}
	res.DropsByReason = *drops
	res.Dropped = drops.Total()
	res.Flows = flowRecs
	for _, ctl := range d.Ctls {
		res.Overload = append(res.Overload, ctl.Status(float64(elapsed)))
	}
	for _, c := range d.Cores {
		ct := c.Snapshot()
		agg.Instructions += ct.Instructions
		agg.BusyCycles += ct.BusyCycles
		agg.TLBMisses += ct.TLBMisses
		agg.LLCLoads += ct.LLCLoads
		agg.LLCLoadMisses += ct.LLCLoadMisses
		if ct.WallNS > agg.WallNS {
			agg.WallNS = ct.WallNS
		}
	}
	res.Counters = agg
	r := d.buildReport(res, res.Latency, e2e, nil)
	// The recorder is empty on the wire path; the histogram carries the
	// exact extremes too, so take the whole digest from it.
	if e2e.Count() > 0 {
		r.LatencyUS = telemetry.LatencyFromHist(e2e)
	}
	out, err := json.Marshal(r)
	if err != nil {
		return nil
	}
	return out
}
