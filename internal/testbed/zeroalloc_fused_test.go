package testbed

import (
	"testing"

	"packetmill/internal/click"
	"packetmill/internal/mill"
	"packetmill/internal/nf"
)

// The fusion zero-allocation gate: the profile-guided build — fused IP
// path, compiled classifier, SHARES telemetry attribution — must hold
// the same steady-state invariant as the plain datapath. Telemetry is ON
// here deliberately: the split-span scratch buckets are part of what the
// gate protects.
func TestSteadyStateZeroAllocsFusedRouter(t *testing.T) {
	plan, err := mill.NewPlan(nf.Router(32))
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Apply(mill.PacketMill()...); err != nil {
		t.Fatal(err)
	}
	res, err := RunGraph(plan.Graph, Options{
		Model: click.XChange, Opt: plan.Opt,
		FreqGHz: 3.0, RateGbps: 5, Packets: 1000, Seed: 7, Telemetry: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	prof := mill.FromReport(res.Telemetry)
	if err := plan.Apply(mill.ProfileGuided(prof)...); err != nil {
		t.Fatal(err)
	}
	fused := false
	for _, e := range plan.Graph.Elements {
		if e.Class == "FusedIPPath" {
			fused = true
		}
	}
	if !fused {
		t.Fatalf("router graph did not fuse; notes: %v", plan.Notes)
	}

	o := Options{Model: click.XChange, Opt: plan.Opt, Telemetry: true}.withDefaults()
	d, err := NewDUT(o)
	if err != nil {
		t.Fatal(err)
	}
	routers, err := d.BuildRouters(plan.Graph)
	if err != nil {
		t.Fatal(err)
	}
	eng := &clickEngine{rt: routers[0], core: d.Cores[0]}

	frames := campusFrames(512)
	for _, f := range frames[:256] {
		pumpOne(d, eng, f)
	}
	next := 256
	avg := testing.AllocsPerRun(50, func() {
		pumpOne(d, eng, frames[next%len(frames)])
		next++
	})
	if avg != 0 {
		t.Errorf("fused router steady state allocates %.1f times per packet, want 0", avg)
	}
}
