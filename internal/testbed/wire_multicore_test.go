package testbed

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"packetmill/internal/click"
	"packetmill/internal/nf"
	"packetmill/internal/nic"
	"packetmill/internal/pktbuf"
	"packetmill/internal/stats"
	"packetmill/internal/trace"
	"packetmill/internal/wire"
)

// buildWireMirrorRig assembles an N-core wire DUT running the EtherMirror
// forwarder, each core on its own loopback segment: gens[c] is the
// generator-side port whose TX feeds core c and whose RX captures core
// c's output.
func buildWireMirrorRig(t testing.TB, cores int, o Options) (*DUT, []*clickEngine, []*wire.Port) {
	t.Helper()
	gens := make([]*wire.Port, cores)
	devsPerCore := make([][]nic.Port, cores)
	for c := 0; c < cores; c++ {
		gen, dut, err := wire.Loopback(
			wire.Config{Name: fmt.Sprintf("gen%d", c), RXRing: 512, TXRing: 512},
			wire.Config{Name: fmt.Sprintf("wire%d", c), Queue: c, RXRing: 512, TXRing: 512})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { gen.Close(); dut.Close() })
		gens[c] = gen
		devsPerCore[c] = []nic.Port{dut}
	}
	d, err := NewWireDUTPerCore(o, devsPerCore)
	if err != nil {
		t.Fatal(err)
	}
	g, err := click.Parse(nf.Mirror(0, 32))
	if err != nil {
		t.Fatal(err)
	}
	routers, err := d.BuildRouters(g)
	if err != nil {
		t.Fatal(err)
	}
	engs := make([]*clickEngine, cores)
	for i, rt := range routers {
		engs[i] = &clickEngine{rt: rt, core: d.Cores[i]}
	}
	return d, engs, gens
}

// TestWireMulticoreConservation runs two concurrent run-to-completion
// cores over live sockets and checks the conservation invariant the way
// the multicore architecture demands it: offered == tx + drops on every
// core individually, and again for the sums — no frame may migrate
// between the per-core ledgers. The per-core span trackers must also
// attribute (almost) every busy cycle, per core and aggregated.
func TestWireMulticoreConservation(t *testing.T) {
	const cores, nFrames = 2, 300
	d, engs, gens := buildWireMirrorRig(t, cores, Options{
		Model: click.XChange, Seed: 7, Telemetry: true,
	})
	engines := make([]Engine, len(engs))
	for i, e := range engs {
		engines[i] = e
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	serveDone := make(chan error, 1)
	go func() {
		_, err := d.ServeWire(ctx, engines, 300*time.Millisecond, 0)
		serveDone <- err
	}()

	// Distinct workloads per core, so a cross-core mixup would show up as
	// a count mismatch.
	frames := campusFrames(cores * nFrames)
	if len(frames) < cores*nFrames {
		t.Fatalf("campus mix produced only %d frames", len(frames))
	}
	var wg sync.WaitGroup
	for c := 0; c < cores; c++ {
		for i := 0; i < nFrames+32; i++ {
			if err := gens[c].Post(pktbuf.NewPacket(make([]byte, 2300), 0, 128)); err != nil {
				t.Fatal(err)
			}
		}
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			tx := pktbuf.NewPacket(make([]byte, 2300), 0, 128)
			reap := make([]*pktbuf.Packet, 1)
			for _, f := range frames[c*nFrames : (c+1)*nFrames] {
				tx.Reset(tx.OrigHeadroom())
				tx.SetFrame(f)
				if !gens[c].Enqueue(nil, tx, 0) {
					t.Errorf("core %d generator Enqueue refused", c)
					return
				}
				for gens[c].Reap(0, reap) == 0 {
					runtime.Gosched()
				}
			}
		}(c)
	}
	wg.Wait()

	// Collect each core's output on its own segment.
	got := make([]uint64, cores)
	pkts := make([]*pktbuf.Packet, 32)
	descs := make([]nic.Descriptor, 32)
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		moved := false
		var total uint64
		for c := 0; c < cores; c++ {
			n := gens[c].Poll(nil, 0, len(pkts), pkts, descs)
			got[c] += uint64(n)
			total += got[c]
			if n > 0 {
				moved = true
			}
		}
		if total >= cores*nFrames {
			break
		}
		if !moved {
			runtime.Gosched()
		}
	}
	if err := <-serveDone; err != nil {
		t.Fatalf("wire serve: %v", err)
	}
	if err := d.Audit(); err != nil {
		t.Fatalf("audit: %v", err)
	}

	var sumOffered, sumAccounted, sumTx uint64
	for c := 0; c < cores; c++ {
		port := d.PortsFor[c][0]
		rxs, txs := port.Dev.RXStats(), port.Dev.TXStats()
		offered := rxs.Delivered + rxs.DropFull + rxs.DropNoBuf + rxs.DropRunt
		if offered != nFrames {
			t.Fatalf("core %d: %d frames reached the DUT NIC, offered %d", c, offered, nFrames)
		}
		if backlog := engs[c].TxBacklog(); backlog != 0 {
			t.Fatalf("core %d: %d packets still queued behind the TX ring after drain", c, backlog)
		}
		// TX ring-full refusals are retried from the PMD backlog (drained
		// above), so they are not lost frames and stay out of the ledger.
		drops := rxs.DropFull + rxs.DropNoBuf + rxs.DropRunt +
			port.Drops.Total() + engs[c].DropStats().Total()
		accounted := txs.Sent + txs.DropTransient + txs.DropOversize + drops
		if accounted != offered {
			t.Fatalf("core %d conservation: offered %d != tx %d + drops %d (tx stats %+v)",
				c, offered, txs.Sent, accounted-txs.Sent, txs)
		}
		if got[c] != txs.Sent {
			t.Fatalf("core %d: captured %d frames, NIC sent %d", c, got[c], txs.Sent)
		}
		sumOffered += offered
		sumAccounted += accounted
		sumTx += txs.Sent
	}
	if sumOffered != cores*nFrames || sumAccounted != sumOffered {
		t.Fatalf("aggregate conservation: offered %d, accounted %d, want %d both",
			sumOffered, sumAccounted, cores*nFrames)
	}
	if sumTx != cores*nFrames {
		t.Fatalf("aggregate tx %d, want %d (mirror forwards everything)", sumTx, cores*nFrames)
	}

	// Attribution self-check, per core and summed across trackers.
	rep := d.buildReport(&Result{}, stats.NewLatencyRecorder(1), trace.NewHist(), nil)
	if rep.Attribution.CoreBusyCycles == 0 {
		t.Fatal("no busy cycles recorded")
	}
	if rep.Attribution.Coverage < 0.95 {
		t.Errorf("aggregate attribution coverage %.4f (attributed %.0f of %.0f cycles), want >= 0.95",
			rep.Attribution.Coverage, rep.Attribution.AttributedCycles, rep.Attribution.CoreBusyCycles)
	}
	for _, cr := range rep.Cores {
		if cr.BusyCycles > 0 && cr.Coverage < 0.95 {
			t.Errorf("core %d attribution coverage %.4f, want >= 0.95", cr.Core, cr.Coverage)
		}
	}
}

// TestWireMulticoreZeroAllocs is the zero-allocation gate for the
// multicore wire datapath: with two per-core pipelines warm, pumping one
// frame through each core — generator enqueue, socket round trip, PMD
// poll, mirror graph, TX, capture, reap — must not allocate. The cores
// are stepped from one goroutine (AllocsPerRun measures process-global
// mallocs), which exercises the same per-core state the concurrent loop
// uses.
func TestWireMulticoreZeroAllocs(t *testing.T) {
	const cores = 2
	d, engs, gens := buildWireMirrorRig(t, cores, Options{Model: click.XChange, Seed: 7})
	frames := campusFrames(256)
	txs := make([]*pktbuf.Packet, cores)
	for c := 0; c < cores; c++ {
		txs[c] = pktbuf.NewPacket(make([]byte, 2300), 0, 128)
		for i := 0; i < 8; i++ {
			if err := gens[c].Post(pktbuf.NewPacket(make([]byte, 2300), 0, 128)); err != nil {
				t.Fatal(err)
			}
		}
	}
	pkts := make([]*pktbuf.Packet, 8)
	descs := make([]nic.Descriptor, 8)
	reap := make([]*pktbuf.Packet, 4)
	next := 0
	cycle := func() {
		for c := 0; c < cores; c++ {
			tx := txs[c]
			tx.Reset(tx.OrigHeadroom())
			tx.SetFrame(frames[(next+c)%len(frames)])
			if !gens[c].Enqueue(nil, tx, 0) {
				t.Fatal("generator Enqueue refused")
			}
			for d.PortsFor[c][0].Dev.PendingCount() == 0 {
				runtime.Gosched()
			}
			for engs[c].Step(d.Cores[c], 0) > 0 {
			}
			for gens[c].PendingCount() == 0 {
				runtime.Gosched()
			}
			n := gens[c].Poll(nil, 0, len(pkts), pkts, descs)
			for i := 0; i < n; i++ {
				if err := gens[c].Post(pkts[i]); err != nil {
					t.Fatal(err)
				}
			}
			for gens[c].Reap(0, reap) == 0 {
				runtime.Gosched()
			}
		}
		next++
	}
	// Socket wakeups dominate wall time on a single-P runtime, so the
	// round counts stay modest; the allocation signal does not need more.
	for i := 0; i < 64; i++ { // warm: pools populate, rings fill
		cycle()
	}
	avg := testing.AllocsPerRun(50, cycle)
	if avg != 0 {
		t.Errorf("multicore steady-state forwarding allocates %.2f times per round, want 0", avg)
	}
}
