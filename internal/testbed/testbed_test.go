package testbed

import (
	"testing"

	"packetmill/internal/click"
	_ "packetmill/internal/elements"
	"packetmill/internal/nf"
	"packetmill/internal/nic"
	"packetmill/internal/trafficgen"
)

func run(t *testing.T, config string, o Options) *Result {
	t.Helper()
	if o.Packets == 0 {
		o.Packets = 3000
	}
	res, err := Run(config, o)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestForwarderCopyingEndToEnd(t *testing.T) {
	res := run(t, nf.Forwarder(0, 32), Options{
		FreqGHz: 2.3, Model: click.Copying, FixedSize: 512, RateGbps: 20,
	})
	if res.Packets == 0 {
		t.Fatal("no packets measured")
	}
	// At 20 Gbps offered and modest per-packet cost the forwarder must
	// keep up: negligible drops.
	if res.Dropped > res.Offered/100 {
		t.Fatalf("dropped %d of %d at light load", res.Dropped, res.Offered)
	}
	if res.Gbps() < 15 || res.Gbps() > 21 {
		t.Fatalf("forwarder goodput %.1f Gbps at 20 offered", res.Gbps())
	}
	if res.Latency.Median() <= 0 {
		t.Fatal("no latency recorded")
	}
}

func TestForwarderAllModelsWork(t *testing.T) {
	for _, m := range []click.MetadataModel{click.Copying, click.Overlaying, click.XChange} {
		res := run(t, nf.Forwarder(0, 32), Options{
			FreqGHz: 2.3, Model: m, FixedSize: 512, RateGbps: 10,
		})
		if res.Packets == 0 {
			t.Fatalf("%v: no packets", m)
		}
		if res.Dropped > res.Offered/50 {
			t.Fatalf("%v: dropped %d/%d at light load", m, res.Dropped, res.Offered)
		}
	}
}

func TestMetadataModelOrdering(t *testing.T) {
	// §4.2: X-Change > Overlaying > Copying in throughput under
	// saturation. Offer line rate at a low frequency so the core is the
	// bottleneck.
	goodput := func(m click.MetadataModel) float64 {
		res := run(t, nf.Forwarder(0, 32), Options{
			FreqGHz: 1.2, Model: m, FixedSize: 1024, RateGbps: 100, Packets: 6000,
		})
		return res.Gbps()
	}
	cp, ov, xc := goodput(click.Copying), goodput(click.Overlaying), goodput(click.XChange)
	t.Logf("copying=%.1f overlaying=%.1f x-change=%.1f Gbps", cp, ov, xc)
	if !(xc > ov && ov > cp) {
		t.Fatalf("model ordering violated: copying=%.1f overlaying=%.1f x-change=%.1f", cp, ov, xc)
	}
}

func TestCodeOptimizationOrdering(t *testing.T) {
	// Figure 4: vanilla < devirtualize < static graph (throughput at a
	// CPU-bound operating point).
	goodput := func(opt click.OptLevel) float64 {
		res := run(t, nf.Router(32), Options{
			FreqGHz: 1.2, Model: click.Copying, Opt: opt,
			FixedSize: 1024, RateGbps: 100, Packets: 6000,
		})
		return res.Gbps()
	}
	vanilla := goodput(click.OptLevel{})
	devirt := goodput(click.OptLevel{Devirtualize: true})
	all := goodput(click.OptLevel{Devirtualize: true, ConstEmbed: true, StaticGraph: true})
	t.Logf("vanilla=%.1f devirt=%.1f all=%.1f Gbps", vanilla, devirt, all)
	if !(all > devirt && devirt > vanilla) {
		t.Fatalf("optimization ordering violated: vanilla=%.2f devirt=%.2f all=%.2f", vanilla, devirt, all)
	}
}

func TestRouterDeliversValidPackets(t *testing.T) {
	res := run(t, nf.Router(32), Options{
		FreqGHz: 2.3, Model: click.Copying, RateGbps: 10, Packets: 4000,
	})
	if res.Packets == 0 {
		t.Fatal("router forwarded nothing")
	}
	// The campus mix includes ARP and unroutable noise, but the bulk
	// must be forwarded.
	if float64(res.Packets) < 0.5*float64(res.Offered) {
		t.Fatalf("router forwarded only %d of %d", res.Packets, res.Offered)
	}
}

func TestIDSRouterRuns(t *testing.T) {
	res := run(t, nf.IDSRouter(32), Options{
		FreqGHz: 2.3, Model: click.Copying, RateGbps: 10, Packets: 4000,
	})
	if res.Packets == 0 {
		t.Fatal("IDS router forwarded nothing")
	}
}

func TestNATRouterRuns(t *testing.T) {
	res := run(t, nf.NATRouter(32), Options{
		FreqGHz: 2.3, Model: click.Copying, RateGbps: 10, Packets: 4000,
	})
	if res.Packets == 0 {
		t.Fatal("NAT forwarded nothing")
	}
}

func TestWorkPackageSlowsThroughput(t *testing.T) {
	light := run(t, nf.WorkPackageForwarder(32, 0, 0, 0), Options{
		FreqGHz: 1.6, Model: click.Copying, FixedSize: 1024, RateGbps: 100, Packets: 5000,
	})
	heavy := run(t, nf.WorkPackageForwarder(32, 16, 5, 20), Options{
		FreqGHz: 1.6, Model: click.Copying, FixedSize: 1024, RateGbps: 100, Packets: 5000,
	})
	if heavy.Gbps() >= light.Gbps() {
		t.Fatalf("WorkPackage cost invisible: light=%.1f heavy=%.1f", light.Gbps(), heavy.Gbps())
	}
}

func TestSaturationCapsThroughputAndDrops(t *testing.T) {
	// Offered load far above capacity: throughput caps, drops appear,
	// and latency rises to the full-ring level (the Figure 1 knee).
	low := run(t, nf.Router(32), Options{
		FreqGHz: 1.2, Model: click.Copying, FixedSize: 512, RateGbps: 5, Packets: 5000,
	})
	high := run(t, nf.Router(32), Options{
		FreqGHz: 1.2, Model: click.Copying, FixedSize: 512, RateGbps: 100, Packets: 20000,
	})
	if high.Dropped == 0 {
		t.Fatal("no drops under 4x overload")
	}
	if high.Latency.Median() < 10*low.Latency.Median() {
		t.Fatalf("latency knee missing: %.1fµs light vs %.1fµs overloaded",
			low.Latency.Median()/1e3, high.Latency.Median()/1e3)
	}
}

func TestThroughputScalesWithFrequency(t *testing.T) {
	slow := run(t, nf.Router(32), Options{
		FreqGHz: 1.2, Model: click.Copying, FixedSize: 1024, RateGbps: 100, Packets: 6000,
	})
	fast := run(t, nf.Router(32), Options{
		FreqGHz: 2.4, Model: click.Copying, FixedSize: 1024, RateGbps: 100, Packets: 6000,
	})
	ratio := fast.Gbps() / slow.Gbps()
	if ratio < 1.3 || ratio > 2.2 {
		t.Fatalf("frequency scaling ratio %.2f (%.1f → %.1f Gbps), want ≈1.5–2", ratio, slow.Gbps(), fast.Gbps())
	}
}

func TestTwoNICsAggregate(t *testing.T) {
	one := run(t, nf.Forwarder(0, 32), Options{
		FreqGHz: 3.0, Model: click.XChange, FixedSize: 1024, RateGbps: 100, Packets: 8000,
	})
	two := run(t, nf.TwoNICForwarder(32), Options{
		FreqGHz: 3.0, Model: click.XChange, NICs: 2, FixedSize: 1024, RateGbps: 100, Packets: 8000,
	})
	if two.Gbps() < one.Gbps()*1.2 {
		t.Fatalf("two NICs did not exceed one: %.1f vs %.1f Gbps", two.Gbps(), one.Gbps())
	}
}

func TestMulticoreScales(t *testing.T) {
	nat := func(cores int) float64 {
		res := run(t, nf.NATRouter(32), Options{
			FreqGHz: 1.2, Cores: cores, Model: click.Copying,
			FixedSize: 1024, RateGbps: 100, Packets: 8000,
			Traffic: nil,
		})
		return res.Gbps()
	}
	one, four := nat(1), nat(4)
	if four < one*1.8 {
		t.Fatalf("multicore scaling too weak: 1 core %.1f, 4 cores %.1f Gbps", one, four)
	}
}

func TestProfileCollected(t *testing.T) {
	res := run(t, nf.Router(32), Options{
		FreqGHz: 2.3, Model: click.Copying, Profile: true,
		FixedSize: 512, RateGbps: 10, Packets: 2000,
	})
	if res.Prof == nil || res.Prof.Total() == 0 {
		t.Fatal("no metadata profile recorded")
	}
}

func TestXChangeDescriptorConservation(t *testing.T) {
	res := run(t, nf.Forwarder(0, 32), Options{
		FreqGHz: 2.3, Model: click.XChange, FixedSize: 512, RateGbps: 20, Packets: 5000,
	})
	if res.Packets == 0 {
		t.Fatal("nothing forwarded")
	}
	// A sustained run through a 64-descriptor pool proves the exchange
	// workflow conserves descriptors (it would panic otherwise).
}

func TestBadConfigErrors(t *testing.T) {
	if _, err := Run("input :: NoSuchElement; input -> input;", Options{}); err == nil {
		t.Fatal("unknown element accepted")
	}
	if _, err := Run("x :: Discard;", Options{}); err == nil {
		t.Fatal("config without source accepted")
	}
}

func TestVectorizedPMDFasterAndRejectsXChange(t *testing.T) {
	cfg := nic.DefaultConfig("uncapped")
	cfg.MaxQueuePPS = 0
	run := func(vec bool) float64 {
		res, err := Run(nf.Forwarder(0, 32), Options{
			FreqGHz: 1.2, Model: click.Overlaying, FixedSize: 64,
			RateGbps: 100, Packets: 6000, VectorizedPMD: vec, NICConfig: &cfg,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Gbps()
	}
	scalar, vector := run(false), run(true)
	if vector <= scalar {
		t.Fatalf("vectorized PMD not faster: %.2f vs %.2f Gbps", vector, scalar)
	}
	// X-Change + vectorized must be rejected, as in the paper.
	if _, err := Run(nf.Forwarder(0, 32), Options{
		FreqGHz: 1.2, Model: click.XChange, VectorizedPMD: true,
	}); err == nil {
		t.Fatal("vectorized PMD accepted under X-Change")
	}
}

func TestReplayedTraceThroughDUT(t *testing.T) {
	// The paper's methodology: record a trace prefix, replay it N times.
	rec := trafficgen.Record(trafficgen.NewCampus(trafficgen.Config{
		Seed: 5, RateGbps: 100, Count: 1500,
	}), 0)
	res, err := Run(nf.Forwarder(0, 32), Options{
		FreqGHz: 2.3, Model: click.Copying, Packets: 4500,
		Traffic: func(int, trafficgen.Config) trafficgen.Source {
			return rec.Replay(3)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Offered != 4500 {
		t.Fatalf("offered %d, want 3x1500", res.Offered)
	}
	if res.Packets == 0 {
		t.Fatal("replayed trace produced no throughput")
	}
}
