package testbed

import (
	"sort"
	"testing"

	"packetmill/internal/click"
	_ "packetmill/internal/elements"
	"packetmill/internal/nf"
)

func TestRunRepeatedMedian(t *testing.T) {
	res, sp, err := RunRepeated(nf.Forwarder(0, 32), Options{
		FreqGHz: 1.4, Model: click.Copying, FixedSize: 512,
		RateGbps: 100, Packets: 4000,
	}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Packets == 0 {
		t.Fatal("median run empty")
	}
	if len(sp.Gbps) != 5 {
		t.Fatalf("spread has %d runs", len(sp.Gbps))
	}
	if !sort.Float64sAreSorted(sp.Gbps) {
		t.Fatal("spread not sorted")
	}
	if sp.MinGbps > sp.MaxGbps {
		t.Fatal("spread inverted")
	}
	med := res.Gbps()
	if med < sp.MinGbps || med > sp.MaxGbps {
		t.Fatalf("median %.2f outside [%.2f, %.2f]", med, sp.MinGbps, sp.MaxGbps)
	}
}

func TestRunRepeatedSeedsVaryRuns(t *testing.T) {
	// With the campus mix the interleavings differ per seed; the runs
	// must not be byte-identical in throughput (that would mean seeds
	// aren't applied).
	_, sp, err := RunRepeated(nf.Router(32), Options{
		FreqGHz: 1.2, Model: click.Copying, RateGbps: 100, Packets: 4000,
	}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if sp.MinGbps == sp.MaxGbps {
		t.Fatal("all repeats identical; seed variation not applied")
	}
}

func TestRunRepeatedBadConfig(t *testing.T) {
	if _, _, err := RunRepeated("nope", Options{}, 2); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestFindLossFreeRate(t *testing.T) {
	// The vanilla router at 1.2 GHz caps well below 100 Gbps; the search
	// must find a loss-free rate below the cap but above a trivial floor.
	rate, res, err := FindLossFreeRate(nf.Router(32), Options{
		FreqGHz: 1.2, Model: click.Copying, FixedSize: 1024,
		RateGbps: 100, Packets: 6000,
	}, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	if rate < 5 || rate > 90 {
		t.Fatalf("loss-free rate %.1f Gbps implausible", rate)
	}
	if res.Dropped > res.Offered/1000 {
		t.Fatalf("final run lossy: %d/%d", res.Dropped, res.Offered)
	}
	// Sanity: offering well above the found rate must drop packets.
	over, err := Run(nf.Router(32), Options{
		FreqGHz: 1.2, Model: click.Copying, FixedSize: 1024,
		RateGbps: 100, Packets: 20000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if over.Dropped == 0 {
		t.Fatal("line-rate run did not drop; loss-free search is meaningless")
	}
}
