package testbed

import (
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"packetmill/internal/click"
	"packetmill/internal/flowlog"
	"packetmill/internal/flowlog/diagnose"
	"packetmill/internal/nf"
	"packetmill/internal/nic"
	"packetmill/internal/overload"
	"packetmill/internal/pktbuf"
	"packetmill/internal/stats"
	"packetmill/internal/trace"
	"packetmill/internal/trafficgen"
	"packetmill/internal/wire"
)

// flowScenario is one run of the diagnosis matrix: a config, traffic,
// and the single scenario its records must (and the others must not)
// diagnose as. Empty want = the clean baseline, zero findings.
type flowScenario struct {
	name string
	want diagnose.Scenario
	run  func(t *testing.T) (*Result, *DUT)
}

// flowRun is chaosRun with the flow log armed.
func flowRun(t *testing.T, config string, o Options) (*Result, *DUT) {
	t.Helper()
	o.FlowLog = flowlog.New(flowlog.Config{})
	res, d, err := chaosRun(config, o)
	if err != nil {
		t.Fatal(err)
	}
	return res, d
}

const flowTrackerConfig = `
input :: FromDPDKDevice(PORT 0, N_QUEUES 1, BURST 32);
output :: ToDPDKDevice(PORT 0, BURST 32);
input -> ct :: ConnTracker(CAPACITY %s)
      -> EtherRewrite(SRC 02:00:00:00:00:02, DST 02:00:00:00:00:01)
      -> output;
`

func flowScenarios() []flowScenario {
	return []flowScenario{
		{
			// Clean churn: table capacity above the concurrent flow
			// count, so no evictions, no refusals, no findings.
			name: "churn", want: "",
			run: func(t *testing.T) (*Result, *DUT) {
				return flowRun(t, strings.Replace(flowTrackerConfig, "%s", "4096", 1), Options{
					Model: click.XChange, Packets: 16000, RateGbps: 40,
					Seed: 21, Telemetry: true,
					Traffic: func(nicID int, cfg trafficgen.Config) trafficgen.Source {
						return trafficgen.NewChurn(trafficgen.ChurnConfig{
							Config: cfg, Concurrent: 2048, FlowPackets: 8,
						})
					},
				})
			},
		},
		{
			// SYN flood: attack half-opens against a small protected
			// table, layered over a sliver of legitimate churn.
			name: "syn-flood", want: diagnose.SYNFlood,
			run: func(t *testing.T) (*Result, *DUT) {
				return flowRun(t, strings.Replace(flowTrackerConfig, "%s", "256, PROTECT true", 1), Options{
					Model: click.XChange, Packets: 16000, RateGbps: 40,
					Seed: 23, Telemetry: true,
					Traffic: func(nicID int, cfg trafficgen.Config) trafficgen.Source {
						legit := cfg
						legit.Count = cfg.Count / 4
						legit.RateGbps = cfg.RateGbps / 4
						flood := cfg
						flood.Seed = cfg.Seed ^ 0x5f1d
						flood.Count = cfg.Count - legit.Count
						flood.RateGbps = cfg.RateGbps - legit.RateGbps
						return trafficgen.NewMerge(
							trafficgen.NewChurn(trafficgen.ChurnConfig{
								Config: legit, Concurrent: 32, FlowPackets: 16,
							}),
							trafficgen.NewSYNFlood(flood),
						)
					},
				})
			},
		},
		{
			// NAT port exhaustion: a roomy table behind a starved
			// external-port pool, so refusals are all no-port.
			name: "nat-exhaustion", want: diagnose.NATPortExhaustion,
			run: func(t *testing.T) (*Result, *DUT) {
				config := `
input :: FromDPDKDevice(PORT 0, N_QUEUES 1, BURST 32);
output :: ToDPDKDevice(PORT 0, BURST 32);
input -> nat :: IPRewriter(EXTIP 192.168.100.1, CAPACITY 4096, PORTS 512)
      -> EtherRewrite(SRC 02:00:00:00:00:02, DST 02:00:00:00:00:01)
      -> output;
`
				return flowRun(t, config, Options{
					Model: click.XChange, Packets: 16000, RateGbps: 40,
					Seed: 25, Telemetry: true,
					Traffic: func(nicID int, cfg trafficgen.Config) trafficgen.Source {
						return trafficgen.NewChurn(trafficgen.ChurnConfig{
							Config: cfg, Concurrent: 2048, FlowPackets: 8,
						})
					},
				})
			},
		},
		{
			// Overload shed storm: the CPU-bound forwarder at far past
			// capacity with tail-drop admission armed. No tracking
			// element — every TX'd packet rides the wire residue and
			// every shed the ledger remainder, and it must still
			// reconcile exactly.
			name: "overload-shed", want: diagnose.ShedStorm,
			run: func(t *testing.T) (*Result, *DUT) {
				return flowRun(t, overloadNF(), Options{
					Model: click.XChange, FreqGHz: 1.2, RateGbps: 40,
					Packets: 6000, NICConfig: overloadRings(),
					Seed: 27, Telemetry: true,
					Overload: &overload.Config{
						Policy:    overload.PolicyTailDrop,
						HighWater: 0.1,
						LowWater:  0.005,
						Health: overload.HealthConfig{
							DegradeOcc:  0.012,
							OverloadOcc: 0.6,
							RecoverOcc:  0.006,
							DwellNS:     5e3,
						},
					},
				})
			},
		},
		{
			// Expiry storm: handshake waves separated by 10x the idle
			// timeout, so each wave's timers mature together.
			name: "expiry-storm", want: diagnose.ExpiryStorm,
			run: func(t *testing.T) (*Result, *DUT) {
				return flowRun(t, strings.Replace(flowTrackerConfig, "%s",
					"4096, ESTABLISHED_MS 1, EMBRYONIC_MS 1", 1), Options{
					Model: click.XChange, Packets: 512 * 2 * 4, RateGbps: 40,
					Seed: 29, Telemetry: true,
					Traffic: func(nicID int, cfg trafficgen.Config) trafficgen.Source {
						return trafficgen.NewExpiryStorm(cfg, 512, 1e7)
					},
				})
			},
		},
	}
}

// TestFlowLogScenarioMatrix drives every scenario and checks the two
// tentpole guarantees end to end: (a) each run's records reconcile
// EXACTLY against the conservation invariant — TX-side packets equal
// the wire count, drop-side packets equal the drop ledger; (b) the
// diagnosis engine names each run's scenario and never cross-fires on
// another's records.
func TestFlowLogScenarioMatrix(t *testing.T) {
	type outcome struct {
		name     string
		want     diagnose.Scenario
		findings []diagnose.Finding
	}
	var outcomes []outcome
	for _, sc := range flowScenarios() {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			res, d := sc.run(t)
			checkInvariants(t, res, d)
			if len(res.Flows) == 0 {
				t.Fatal("flow log produced no records")
			}
			rec := flowlog.Reconcile(res.Flows, res.Offered, res.TxWire, &res.DropsByReason)
			if !rec.Exact {
				t.Fatalf("reconciliation inexact: offered=%d txWire=%d drops=%d txSide=%d dropSide=%d",
					rec.Offered, rec.TxWire, rec.Drops, rec.TxSide, rec.DropSide)
			}
			// The report carries the verdict roll-up.
			if res.Telemetry == nil || res.Telemetry.Flows == nil {
				t.Fatal("telemetry report has no flows section")
			}
			if res.Telemetry.Flows.TxSidePackets != rec.TxSide {
				t.Fatalf("report TX-side %d != records %d",
					res.Telemetry.Flows.TxSidePackets, rec.TxSide)
			}
			findings := diagnose.Run(res.Flows, diagnose.Defaults())
			outcomes = append(outcomes, outcome{sc.name, sc.want, findings})
		})
	}
	if t.Failed() {
		return
	}
	// The zero-false-positive matrix: each run earns exactly its own
	// scenario (the baseline earns none).
	for _, o := range outcomes {
		var names []string
		for _, f := range o.findings {
			names = append(names, string(f.Scenario))
		}
		if o.want == "" {
			if len(o.findings) != 0 {
				t.Errorf("%s: clean run diagnosed as %v", o.name, names)
			}
			continue
		}
		if len(o.findings) != 1 || o.findings[0].Scenario != o.want {
			t.Errorf("%s: diagnosed as %v, want exactly [%s]", o.name, names, o.want)
		}
	}
}

// TestWireFlowsExport serves a conntrack forwarder on a live loopback
// wire with the exporter and flow log armed, then checks the whole
// export surface: /metrics carries the flow families and every drop
// reason, and lints clean against the text-format checker; /flows
// serves schema-tagged JSON lines; /report carries the flows section;
// and the post-session record cut reconciles against the wire counters.
func TestWireFlowsExport(t *testing.T) {
	const nFrames = 300
	gen, dut, err := wire.Loopback(
		wire.Config{Name: "gen", RXRing: 1024, TXRing: 1024},
		wire.Config{Name: "dut", RXRing: 1024, TXRing: 1024})
	if err != nil {
		t.Fatal(err)
	}
	defer gen.Close()
	defer dut.Close()

	ms, err := trace.NewMetricsServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ms.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	type served struct {
		d   *DUT
		err error
	}
	serveDone := make(chan served, 1)
	go func() {
		d, _, err := ServeWireGraph(ctx, mustParse(t, nf.ConnTrackForwarder(32, 4096)),
			Options{Model: click.Copying, Seed: 7, Telemetry: true,
				Metrics: ms, FlowLog: flowlog.New(flowlog.Config{})},
			[]nic.Port{dut}, 300*time.Millisecond, 0)
		if err == nil {
			err = d.Audit()
		}
		serveDone <- served{d, err}
	}()

	for i := 0; i < nFrames+32; i++ {
		if err := gen.Post(pktbuf.NewPacket(make([]byte, 2300), 0, 128)); err != nil {
			t.Fatal(err)
		}
	}
	tx := pktbuf.NewPacket(make([]byte, 2300), 0, 128)
	reap := make([]*pktbuf.Packet, 1)
	for _, frame := range campusFrames(nFrames) {
		tx.Reset(tx.OrigHeadroom())
		tx.SetFrame(frame)
		if !gen.Enqueue(nil, tx, 0) {
			t.Fatal("generator Enqueue refused")
		}
		deadline := time.Now().Add(5 * time.Second)
		for gen.Reap(0, reap) == 0 {
			if time.Now().After(deadline) {
				t.Fatal("generator TX buffer never came back")
			}
		}
	}
	pkts := make([]*pktbuf.Packet, 32)
	descs := make([]nic.Descriptor, 32)
	got := 0
	deadline := time.Now().Add(20 * time.Second)
	for got < nFrames && time.Now().Before(deadline) {
		got += gen.Poll(nil, 0, len(pkts), pkts, descs)
	}
	sv := <-serveDone
	if sv.err != nil {
		t.Fatalf("wire serve: %v", sv.err)
	}

	// /metrics: lint-clean, with the flow families and the full drop
	// taxonomy exposed.
	body := httpGet(t, "http://"+ms.Addr()+"/metrics")
	if problems := trace.LintProm([]byte(body)); len(problems) != 0 {
		t.Fatalf("/metrics fails the exposition lint:\n%s", strings.Join(problems, "\n"))
	}
	for _, fam := range []string{
		"packetmill_flow_records", "packetmill_flow_packets_total",
		"packetmill_flow_bytes_total", "packetmill_flow_records_lost_total",
		"packetmill_flow_latency_samples_total", "packetmill_flow_top_bytes",
	} {
		if !strings.Contains(body, fam) {
			t.Errorf("/metrics is missing the %s family", fam)
		}
	}
	for _, r := range stats.Reasons() {
		if !strings.Contains(body, `packetmill_drops_total{reason="`+r.String()+`"} `) {
			t.Errorf("/metrics drop taxonomy is missing reason %s", r)
		}
	}
	for v := flowlog.Verdict(0); v < flowlog.NumVerdicts; v++ {
		if !strings.Contains(body, `packetmill_flow_packets_total{verdict="`+v.String()+`"} `) {
			t.Errorf("/metrics flow families are missing verdict %s", v)
		}
	}

	// /flows: one schema-tagged JSON object per line.
	flows := httpGet(t, "http://"+ms.Addr()+"/flows")
	lines := strings.Split(strings.TrimRight(flows, "\n"), "\n")
	if len(lines) == 0 || lines[0] == "" {
		t.Fatal("/flows served no records")
	}
	for i, line := range lines {
		var doc map[string]any
		if err := json.Unmarshal([]byte(line), &doc); err != nil {
			t.Fatalf("/flows line %d is not JSON: %v\n%s", i+1, err, line)
		}
		if doc["schema"] != flowlog.Schema {
			t.Fatalf("/flows line %d schema = %v, want %q", i+1, doc["schema"], flowlog.Schema)
		}
	}

	// /report: the flows roll-up rides the same document.
	var rep struct {
		Flows *struct {
			Records uint64 `json:"records"`
		} `json:"flows"`
	}
	if err := json.Unmarshal([]byte(httpGet(t, "http://"+ms.Addr()+"/report")), &rep); err != nil {
		t.Fatalf("/report is not valid JSON: %v", err)
	}
	if rep.Flows == nil || rep.Flows.Records == 0 {
		t.Error("/report has no flows section after a served session")
	}

	// The post-session cut reconciles against the wire's own counters.
	recs := sv.d.WireFlowRecords()
	if len(recs) == 0 {
		t.Fatal("WireFlowRecords returned nothing")
	}
	drops, txWire := sv.d.wireLedger(sv.d.wireEngines)
	rec := flowlog.Reconcile(recs, txWire+drops.Total(), txWire, &drops)
	if !rec.Exact {
		t.Fatalf("wire reconciliation inexact: %+v", rec)
	}
}

// The observability gate, state-plane edition: conntrack tracking, flow
// logging (lifecycle hooks, refusal counters, the TX latency sampler),
// and the metrics exporter armed together must keep the steady-state
// datapath at zero allocations per packet.
func TestSteadyStateZeroAllocsFlowLogged(t *testing.T) {
	ms, err := trace.NewMetricsServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ms.Close()
	o := Options{Model: click.XChange, Telemetry: true, Metrics: ms,
		FlowLog: flowlog.New(flowlog.Config{SampleEvery: 1})}.withDefaults()
	d, err := NewDUT(o)
	if err != nil {
		t.Fatal(err)
	}
	g, err := click.Parse(nf.ConnTrackForwarder(32, 4096))
	if err != nil {
		t.Fatal(err)
	}
	routers, err := d.BuildRouters(g)
	if err != nil {
		t.Fatal(err)
	}
	eng := &clickEngine{rt: routers[0], core: d.Cores[0]}
	frames := churnFrames(2048)
	for _, f := range frames[:1024] {
		pumpOne(d, eng, f)
	}
	// The depart hook must actually be sampling, or the gate measures a
	// disarmed flow log.
	if sampled, _ := o.FlowLog.LatencySampled(); sampled == 0 {
		t.Fatal("flow log sampled no TX latency during warmup")
	}
	next := 1024
	avg := testing.AllocsPerRun(100, func() {
		pumpOne(d, eng, frames[next%len(frames)])
		next++
	})
	if avg != 0 {
		t.Errorf("flow-logged datapath allocates %.2f times per packet, want 0", avg)
	}
}
