package testbed

import (
	"testing"

	"packetmill/internal/click"
	"packetmill/internal/nf"
	"packetmill/internal/stats"
	"packetmill/internal/trafficgen"
)

// The flow-churn acceptance run: the NAT on its conntrack shard under
// sustained flow churn far beyond capacity. The table must stay bounded
// (the leak fix), conservation must balance including the DropFlowTable*
// reasons, and the telemetry report must carry the flow-table ledger.
func TestConntrackChurnConservation(t *testing.T) {
	config := `
input :: FromDPDKDevice(PORT 0, N_QUEUES 1, BURST 32);
output :: ToDPDKDevice(PORT 0, BURST 32);
input -> nat :: IPRewriter(EXTIP 192.168.100.1, CAPACITY 256, UDP_MS 1, ESTABLISHED_MS 2)
      -> EtherRewrite(SRC 02:00:00:00:00:02, DST 02:00:00:00:00:01)
      -> output;
`
	res, d, err := chaosRun(config, Options{
		Model:     click.XChange,
		Packets:   20000,
		RateGbps:  100,
		Seed:      11,
		Telemetry: true,
		Traffic: func(nicID int, cfg trafficgen.Config) trafficgen.Source {
			return trafficgen.NewChurn(trafficgen.ChurnConfig{
				Config: cfg, Concurrent: 2048, FlowPackets: 4,
			})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	checkInvariants(t, res, d)
	if res.Telemetry == nil || len(res.Telemetry.Conntrack) == 0 {
		t.Fatal("report carries no conntrack section")
	}
	ct := res.Telemetry.Conntrack[0]
	if ct.Element != "nat" {
		t.Fatalf("conntrack entry for %q, want nat", ct.Element)
	}
	if ct.FlowTableEntries > ct.Capacity || ct.Capacity != 256 {
		t.Fatalf("table unbounded: %d/%d entries", ct.FlowTableEntries, ct.Capacity)
	}
	// 2048 concurrent flows against 256 slots: pressure must show as
	// evictions (and any refusals must be conserved as taxonomy drops).
	if ct.Expirations == 0 && len(ct.Evictions) == 0 {
		t.Fatal("no expirations or evictions under churn pressure")
	}
	full := res.DropsByReason.Get(stats.DropFlowTableFull)
	if ct.RefusedFull != full {
		t.Fatalf("shard refusals %d != booked flow-table-full drops %d", ct.RefusedFull, full)
	}
	if ct.PortsRecycled == 0 {
		t.Fatal("NAT recycled no ports across churn")
	}
}

// The SYN-flood chaos run: an attack stream of distinct half-opens
// layered over legitimate churn, against a small protected tracker,
// with wire faults injected. The eviction policy must sacrifice the
// embryonic attack entries and never an established connection, and
// conservation must survive the whole storm.
func TestConntrackSYNFloodChaos(t *testing.T) {
	config := `
input :: FromDPDKDevice(PORT 0, N_QUEUES 1, BURST 32);
output :: ToDPDKDevice(PORT 0, BURST 32);
input -> ct :: ConnTracker(CAPACITY 128)
      -> EtherRewrite(SRC 02:00:00:00:00:02, DST 02:00:00:00:00:01)
      -> output;
`
	res, d, err := chaosRun(config, Options{
		Model:     click.XChange,
		Packets:   20000,
		RateGbps:  100,
		Seed:      13,
		Telemetry: true,
		Faults:    mustSched(t, "drop p=0.02"),
		Traffic: func(nicID int, cfg trafficgen.Config) trafficgen.Source {
			legit := cfg
			legit.Count = cfg.Count / 4
			legit.RateGbps = cfg.RateGbps / 4
			flood := cfg
			flood.Seed = cfg.Seed ^ 0x5f1d
			flood.Count = cfg.Count - legit.Count
			flood.RateGbps = cfg.RateGbps - legit.RateGbps
			return trafficgen.NewMerge(
				trafficgen.NewChurn(trafficgen.ChurnConfig{
					Config: legit, Concurrent: 32, FlowPackets: 16,
				}),
				trafficgen.NewSYNFlood(flood),
			)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	checkInvariants(t, res, d)
	if res.FaultStats == nil || res.FaultStats.WireDrops == 0 {
		t.Fatal("fault schedule injected nothing")
	}
	if len(res.Telemetry.Conntrack) == 0 {
		t.Fatal("no conntrack report")
	}
	ct := res.Telemetry.Conntrack[0]
	if ct.Evictions["embryonic"] == 0 {
		t.Fatal("SYN flood against a 128-slot table caused no embryonic evictions")
	}
	if ct.Evictions["established"] != 0 {
		t.Fatalf("flood cannibalized %d established connections", ct.Evictions["established"])
	}
}

// The mass-expiry storm: waves of handshakes followed by silence long
// past the idle timeout, so each wave's timers mature together. The
// budgeted sweep must drain every wave (expirations ≈ insertions) while
// occupancy returns to the live wave only.
func TestConntrackExpiryStorm(t *testing.T) {
	config := `
input :: FromDPDKDevice(PORT 0, N_QUEUES 1, BURST 32);
output :: ToDPDKDevice(PORT 0, BURST 32);
input -> ct :: ConnTracker(CAPACITY 4096, ESTABLISHED_MS 1, EMBRYONIC_MS 1)
      -> EtherRewrite(SRC 02:00:00:00:00:02, DST 02:00:00:00:00:01)
      -> output;
`
	const wave = 512
	res, d, err := chaosRun(config, Options{
		Model:     click.XChange,
		Packets:   wave * 2 * 4, // 4 waves of SYN+ACK pairs
		RateGbps:  100,
		Seed:      17,
		Telemetry: true,
		Traffic: func(nicID int, cfg trafficgen.Config) trafficgen.Source {
			// 10 ms silence between waves: 10× the 1 ms idle timeout.
			return trafficgen.NewExpiryStorm(cfg, wave, 1e7)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	checkInvariants(t, res, d)
	ct := res.Telemetry.Conntrack[0]
	if ct.Insertions == 0 {
		t.Fatal("storm inserted nothing")
	}
	// Every wave but the last has sat idle 10× its timeout; those flows
	// must have expired (the last wave may still be live at shutdown).
	if ct.Expirations < ct.Insertions-wave {
		t.Fatalf("expirations %d lag insertions %d by more than a wave (%d)",
			ct.Expirations, ct.Insertions, wave)
	}
	if ct.FlowTableEntries > wave {
		t.Fatalf("occupancy %d exceeds one wave (%d) after the storm", ct.FlowTableEntries, wave)
	}
}

// churnFrames pre-generates owned churn frames so generation stays out
// of the allocation measurement.
func churnFrames(n int) [][]byte {
	src := trafficgen.NewChurn(trafficgen.ChurnConfig{
		Config:     trafficgen.Config{Seed: 7, RateGbps: 100, Count: n},
		Concurrent: 512, FlowPackets: 6,
	})
	frames := make([][]byte, 0, n)
	for {
		f, _, ok := src.Next()
		if !ok {
			break
		}
		frames = append(frames, append([]byte(nil), f...))
	}
	return frames
}

// The full-datapath zero-alloc gate for the state plane: PMD → conntrack
// shard (lookups, inserts, expiries, TCP transitions) → TX, under flow
// churn, must not allocate per packet once warm.
func TestConntrackDatapathZeroAllocs(t *testing.T) {
	o := Options{Model: click.XChange}.withDefaults()
	d, err := NewDUT(o)
	if err != nil {
		t.Fatal(err)
	}
	g, err := click.Parse(nf.ConnTrackForwarder(32, 4096))
	if err != nil {
		t.Fatal(err)
	}
	routers, err := d.BuildRouters(g)
	if err != nil {
		t.Fatal(err)
	}
	eng := &clickEngine{rt: routers[0], core: d.Cores[0]}
	frames := churnFrames(2048)
	for _, f := range frames[:1024] {
		pumpOne(d, eng, f)
	}
	next := 1024
	avg := testing.AllocsPerRun(100, func() {
		pumpOne(d, eng, frames[next%len(frames)])
		next++
	})
	if avg != 0 {
		t.Errorf("conntrack datapath allocates %.2f times per packet, want 0", avg)
	}
}
