// Package testbed is the two-node experiment harness (the repository's
// NPF): a packet generator wired to a device under test over simulated
// 100-GbE links. It assembles the DUT — machine, NICs, DPDK ports with
// the binding matching the chosen metadata model, and the engine under
// test — offers load, and measures end-to-end latency and throughput the
// way the paper's generator server does.
package testbed

import (
	"fmt"
	"math"
	"os"
	"strings"

	"packetmill/internal/cache"
	"packetmill/internal/click"
	"packetmill/internal/dpdk"
	"packetmill/internal/faults"
	"packetmill/internal/flowlog"
	"packetmill/internal/layout"
	"packetmill/internal/machine"
	"packetmill/internal/memsim"
	"packetmill/internal/nic"
	"packetmill/internal/overload"
	"packetmill/internal/pktbuf"
	"packetmill/internal/stats"
	"packetmill/internal/telemetry"
	"packetmill/internal/trace"
	"packetmill/internal/trafficgen"
	"packetmill/internal/xchg"
)

// Engine is anything the testbed can drive: a Click router, a BESS/VPP
// pipeline, or a raw DPDK application.
type Engine interface {
	// Step runs one scheduling round on core at time now; returns the
	// number of packets moved (0 = idle poll).
	Step(core *machine.Core, now float64) int
}

// Options configures a run.
type Options struct {
	// FreqGHz is the DUT core frequency (the paper sweeps 1.2–3.0).
	FreqGHz float64
	// Cores is the DUT core count (RSS spreads flows across them).
	Cores int
	// NICs is the adapter count (Figure 5b uses two).
	NICs int
	// Model selects the metadata-management model.
	Model click.MetadataModel
	// Opt selects the PacketMill source-code optimizations.
	Opt click.OptLevel
	// MetaLayout overrides the framework descriptor layout (reorder pass).
	MetaLayout *layout.Layout
	// Profile records the metadata access profile during the run.
	Profile bool

	// RateGbps is the offered wire rate per NIC.
	RateGbps float64
	// Packets is the per-NIC frame count to offer.
	Packets int
	// Traffic builds the per-NIC source; nil defaults to the campus mix.
	Traffic func(nicID int, cfg trafficgen.Config) trafficgen.Source
	// FixedSize, when >0 and Traffic is nil, offers fixed-size frames.
	FixedSize int

	// Warmup is the number of departures excluded from measurement.
	Warmup int

	// DescPool sizes the X-Change descriptor pool (default 64 ≈ burst +
	// software queue, per §3.1).
	DescPool int
	// DescPoolFIFO recycles descriptors in FIFO order (ablation: cycling
	// like mbufs instead of staying warm).
	DescPoolFIFO bool
	// MempoolSize sizes the per-port DPDK mempool beyond the RX ring.
	MempoolSize int
	// NICConfig overrides the adapter model; nil uses the ConnectX-5
	// defaults.
	NICConfig *nic.Config
	// DDIOWays overrides the LLC's DDIO window width (0 = default 8).
	DDIOWays int
	// InlineLTO controls conversion-function inlining (default true).
	NoLTO bool
	// VectorizedPMD enables the SIMD receive path (compressed CQEs);
	// rejected under the X-Change model, like the paper's prototype.
	VectorizedPMD bool

	// Tap, when set, observes every frame that leaves the DUT (after the
	// latency probe) — the hook differential verification uses.
	Tap func(frame []byte, departNS float64)

	// RxTap, when set, observes every frame presented to a DUT NIC
	// *after* fault injection (survivors of the injected wire faults,
	// runts included). The chaos harness records this schedule and
	// replays it through a clean DUT to check fault/clean equivalence.
	// The frame buffer is reused; observers must copy.
	RxTap func(nicID int, frame []byte, ns float64)

	// Faults is the fault schedule injected into the run (see
	// internal/faults); nil or empty runs clean.
	Faults *faults.Schedule
	// FaultSeed seeds the fault engine; 0 derives it from Seed.
	FaultSeed uint64
	// WatchdogNS is the stall watchdog: the run fails with *StallError
	// when work is pending but nothing has progressed for this much
	// simulated time. 0 picks the 50 ms default; negative disables. It
	// must exceed any injected stall/flap window.
	WatchdogNS float64

	// Telemetry enables the observability layer: per-core span trackers
	// on every router, per-queue counters, interval snapshots, and a full
	// telemetry.Report on the Result.
	Telemetry bool
	// SnapshotIntervalNS paces the interval snapshots (default 100 µs of
	// simulated time when Telemetry is on).
	SnapshotIntervalNS float64

	// Trace, when non-nil, arms the per-packet flight recorder: the PMD
	// samples 1-in-N received packets deterministically and every stage
	// and element they traverse (plus drops and fault injections) lands
	// in a fixed per-core event ring, exportable as Chrome trace JSON.
	// Tracing implies span trackers even when Telemetry is off (the
	// report is still only built under Telemetry).
	Trace *trace.Recorder
	// StallTracePath, when set together with Trace, is where the
	// watchdog writes the flight-recorder dump when it kills a stalled
	// run — the post-mortem for a StallError.
	StallTracePath string
	// Metrics, when non-nil, is the live exporter: ServeWire publishes
	// periodic snapshots (port counters, drop taxonomy, queue depths,
	// latency histograms) to its /metrics and /report endpoints.
	Metrics *trace.MetricsServer

	// Overload, when non-nil, arms the per-core overload control plane:
	// admission shedding at the PMD RX boundary, backpressure for
	// lossless pipelines, and the self-healing health state machine. The
	// watchdog escalates stalls to drain-and-restart before failing.
	Overload *overload.Config

	// FlowLog, when non-nil, arms the flow-record pipeline: stateful
	// elements (ConnTracker, IPRewriter) bind per-core flow logs, the
	// PMD's TX depart hook samples per-flow latency, and the run's flow
	// records land on Result.Flows (and, with Metrics, on /flows).
	FlowLog *flowlog.Collector

	Seed uint64
}

func (o Options) withDefaults() Options {
	if o.FreqGHz == 0 {
		o.FreqGHz = 2.3
	}
	if o.Cores <= 0 {
		o.Cores = 1
	}
	if o.NICs <= 0 {
		o.NICs = 1
	}
	if o.RateGbps == 0 {
		o.RateGbps = 100
	}
	if o.Packets == 0 {
		o.Packets = 50000
	}
	if o.Warmup == 0 {
		o.Warmup = o.Packets / 10
	}
	if o.DescPool == 0 {
		o.DescPool = 64
	}
	if o.MempoolSize == 0 {
		o.MempoolSize = 2048
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Telemetry && o.SnapshotIntervalNS <= 0 {
		o.SnapshotIntervalNS = 100e3 // 100 µs of simulated time
	}
	return o
}

// Result is everything a run measured.
type Result struct {
	stats.Throughput
	Latency *stats.LatencyRecorder
	// Counters is the perf delta over the measurement window, aggregated
	// across cores (LLC counters are system-wide).
	Counters machine.Counters
	// Offered is the total frames offered; Dropped the frames lost at
	// the NIC or inside the engine (Dropped == DropsByReason.Total()).
	Offered uint64
	Dropped uint64
	// TxWire counts frames that left the DUT on the wire (warmup
	// included). Conservation holds for every run, faulted or clean:
	// Offered == TxWire + DropsByReason.Total().
	TxWire uint64
	// DropsByReason attributes every lost frame to its drop reason.
	DropsByReason stats.DropCounters
	// FaultStats reports what the fault engine injected (nil when the
	// run was clean).
	FaultStats *faults.InjectedStats
	// Prof is the metadata access profile (when Options.Profile).
	Prof *layout.OrderProfile
	// Routers are the per-core built engines (for inspection).
	Routers []*click.Router
	// Telemetry is the full observability report (when Options.Telemetry).
	Telemetry *telemetry.Report
	// Overload is the per-core control-plane status (when Options.Overload).
	Overload []overload.CoreStatus
	// WatchdogRestarts counts drain-and-restart recoveries the watchdog
	// performed instead of failing the run.
	WatchdogRestarts uint64
	// ClassLat are per-traffic-class wire-to-wire latency histograms
	// (when Options.Overload), indexed by overload.ClassOf.
	ClassLat []*trace.Hist
	// Flows are the run's flow records (when Options.FlowLog),
	// reconciled against the conservation invariant.
	Flows []flowlog.Record
}

// DUT is an assembled device under test, reusable across the build-run
// plumbing of cmd/packetmill and the experiments.
type DUT struct {
	Opts Options
	Mach *machine.Machine
	// Machs holds one machine per core on the multicore wire path, where
	// cores run as concurrent goroutines and the simulated memory
	// hierarchy (a single-threaded model) cannot be shared. The simulated
	// DUT steps cores from one goroutine and keeps them all on Mach, so
	// Machs has a single entry there.
	Machs  []*machine.Machine
	Cores  []*machine.Core
	NICs   []*nic.NIC
	Huge   *memsim.Arena
	Static *memsim.Arena
	Heap   *memsim.Heap
	// PortsFor maps (core, click PORT number) to PMD ports: core-indexed
	// slice of maps.
	PortsFor []map[int]*dpdk.Port
	// pools/bindings for recycling.
	mempools map[*dpdk.Port]*dpdk.Mempool
	bindings map[*dpdk.Port]xchg.Binding
	// rawBufTotal counts raw X-Change buffers carved at build time; the
	// post-run leak audit reconciles spare lists and rings against it.
	rawBufTotal int
	// Trackers are the per-core telemetry span trackers (nil entries when
	// telemetry is off). BuildRouters installs them into the routers.
	Trackers []*telemetry.Tracker
	// Ctls are the per-core overload controllers (empty when the control
	// plane is off). NewDUT attaches them to every PMD port and
	// BuildRouters installs them into the routers.
	Ctls []*overload.Controller
	// wireEngines is the engine set of the current/last wire session,
	// kept so post-session readers (WireFlowRecords) can fold engine
	// drop ledgers without re-threading the slice.
	wireEngines []Engine
}

// machFor returns core c's machine: its own on the multicore wire path,
// the shared one everywhere else.
func (d *DUT) machFor(c int) *machine.Machine {
	if c < len(d.Machs) {
		return d.Machs[c]
	}
	return d.Mach
}

// Ctl returns core c's overload controller, or nil when the control
// plane is off — every consumer is nil-safe.
func (d *DUT) Ctl(c int) *overload.Controller {
	if c < len(d.Ctls) {
		return d.Ctls[c]
	}
	return nil
}

// NewDUT assembles machine, NICs, and per-core PMD ports according to the
// metadata model.
func NewDUT(o Options) (*DUT, error) {
	o = o.withDefaults()
	memCfg := cache.DefaultSystemConfig()
	if o.DDIOWays > 0 {
		memCfg.DDIOWays = o.DDIOWays
	}
	mach := machine.New(memCfg, machine.DefaultCostModel())
	d := &DUT{
		Opts:     o,
		Mach:     mach,
		Machs:    []*machine.Machine{mach},
		Huge:     memsim.NewArena("hugepages", memsim.HugeBase, 1<<30),
		Static:   memsim.NewArena("static", memsim.StaticBase, 512<<20),
		Heap:     memsim.NewHeap(),
		mempools: map[*dpdk.Port]*dpdk.Mempool{},
		bindings: map[*dpdk.Port]xchg.Binding{},
	}
	for c := 0; c < o.Cores; c++ {
		core := mach.AddCore(o.FreqGHz)
		d.Cores = append(d.Cores, core)
		d.PortsFor = append(d.PortsFor, map[int]*dpdk.Port{})
		// Tracing rides on the tracker's span seam, so it needs the
		// trackers even when no report will be built.
		if o.Telemetry || o.Trace != nil {
			d.Trackers = append(d.Trackers, telemetry.NewTracker(core))
		} else {
			d.Trackers = append(d.Trackers, nil)
		}
	}
	for n := 0; n < o.NICs; n++ {
		cfg := nic.DefaultConfig(fmt.Sprintf("nic%d", n))
		if o.NICConfig != nil {
			cfg = *o.NICConfig
			cfg.Name = fmt.Sprintf("nic%d", n)
		}
		cfg.NumQueues = o.Cores
		d.NICs = append(d.NICs, nic.New(cfg, mach.Sys, d.Huge))
	}

	// One PMD port per (core, NIC): queue c of NIC n appears as Click
	// PORT n on core c.
	for c := 0; c < o.Cores; c++ {
		for n := 0; n < o.NICs; n++ {
			port, err := d.buildPort(n, c)
			if err != nil {
				return nil, err
			}
			d.PortsFor[c][n] = port
		}
	}
	d.buildControllers()
	d.attachTrace()
	return d, nil
}

// buildControllers materializes one overload controller per core (when
// configured) and attaches it to the core's PMD ports. Each core gets
// its own seeded RED stream, and health transitions land on the core's
// flight-recorder timeline when tracing is armed.
func (d *DUT) buildControllers() {
	o := d.Opts
	if o.Overload == nil {
		return
	}
	for c := 0; c < o.Cores; c++ {
		cfg := *o.Overload
		if cfg.Seed == 0 {
			cfg.Seed = o.Seed
		}
		cfg.Seed += uint64(c)
		if o.Trace != nil {
			ct := o.Trace.Core(c)
			user := cfg.OnTransition
			cfg.OnTransition = func(nowNS float64, from, to overload.State) {
				ct.Health(to.String())
				if user != nil {
					user(nowNS, from, to)
				}
			}
		}
		d.Ctls = append(d.Ctls, overload.New(cfg))
	}
	for c := range d.PortsFor {
		for _, port := range d.PortsFor[c] {
			port.Overload = d.Ctls[c]
		}
	}
}

// attachTrace binds each core's flight recorder to its clock, its span
// tracker, and its PMD ports. Also installs the per-port end-to-end
// latency histogram when telemetry is on, and the flow log's TX depart
// hook when flow logging is armed.
func (d *DUT) attachTrace() {
	for c, core := range d.Cores {
		if d.Opts.Telemetry || d.Opts.Metrics != nil {
			for _, port := range d.PortsFor[c] {
				port.LatHist = trace.NewHist()
			}
		}
		if d.Opts.FlowLog != nil {
			fc := d.Opts.FlowLog.Core(c)
			for _, port := range d.PortsFor[c] {
				port.OnTxLat = fc.NoteDepart
			}
		}
		if d.Opts.Trace == nil {
			continue
		}
		ct := d.Opts.Trace.Core(c)
		ct.SetClock(core.NowNS)
		d.Trackers[c].SetTrace(ct)
		for _, port := range d.PortsFor[c] {
			port.Trace = ct
		}
	}
}

// buildPort creates queue `queue` of NIC `nicID` as a PMD port with the
// binding the metadata model calls for, fully posted.
func (d *DUT) buildPort(nicID, queue int) (*dpdk.Port, error) {
	return d.buildPortOn(nicID, d.NICs[nicID].Port(queue))
}

// buildPortOn wires a PMD port with buffers and the model's binding onto
// any device queue pair — the simulated NIC's or a live wire backend's.
func (d *DUT) buildPortOn(portID int, dev nic.Port) (*dpdk.Port, error) {
	o := d.Opts
	ringSize := dev.RXRingSize()

	switch o.Model {
	case click.XChange:
		descLayout := layout.XchgPacket()
		if o.MetaLayout != nil {
			descLayout = o.MetaLayout
		}
		var prof *layout.OrderProfile
		// Profiling of the X-Change descriptor is attached later by the
		// engine builder when requested; the pool starts unprofiled.
		dp, err := xchg.NewDescriptorPool(o.DescPool, descLayout, d.Static, prof)
		if err != nil {
			return nil, err
		}
		dp.SetFIFO(o.DescPoolFIFO)
		bind := xchg.NewCustomBinding("x-change", dp, !o.NoLTO)
		port := dpdk.NewPort(portID, dev, nil, bind, 32)
		if err := port.SetVectorized(o.VectorizedPMD); err != nil {
			return nil, err
		}
		bufs, err := dpdk.AllocRawBuffers(d.Huge, ringSize+o.DescPool,
			dpdk.DefaultHeadroom, dpdk.DefaultDataRoom)
		if err != nil {
			return nil, err
		}
		d.rawBufTotal += len(bufs)
		port.ProvideBuffers(bufs)
		if err := port.SetupRX(); err != nil {
			return nil, err
		}
		d.bindings[port] = bind
		return port, nil

	case click.Overlaying:
		spec := dpdk.DefaultBufSpec()
		spec.MetaLayout = layout.OverlayPacket()
		if o.MetaLayout != nil {
			spec.MetaLayout = o.MetaLayout
		}
		spec.SeparateMbuf = false
		pool, err := dpdk.NewMempool(fmt.Sprintf("ov%d-%d", portID, dev.QueueID()),
			ringSize+o.MempoolSize, d.Huge, spec)
		if err != nil {
			return nil, err
		}
		bind := xchg.NewDefaultBinding(!o.NoLTO)
		port := dpdk.NewPort(portID, dev, pool, bind, 32)
		if err := port.SetVectorized(o.VectorizedPMD); err != nil {
			return nil, err
		}
		if err := port.SetupRX(); err != nil {
			return nil, err
		}
		d.mempools[port] = pool
		d.bindings[port] = bind
		return port, nil

	default: // Copying
		pool, err := dpdk.NewMempool(fmt.Sprintf("mb%d-%d", portID, dev.QueueID()),
			ringSize+o.MempoolSize, d.Huge, dpdk.DefaultBufSpec())
		if err != nil {
			return nil, err
		}
		bind := xchg.NewDefaultBinding(!o.NoLTO)
		port := dpdk.NewPort(portID, dev, pool, bind, 32)
		if err := port.SetVectorized(o.VectorizedPMD); err != nil {
			return nil, err
		}
		if err := port.SetupRX(); err != nil {
			return nil, err
		}
		d.mempools[port] = pool
		d.bindings[port] = bind
		return port, nil
	}
}

// RecycleFor returns the buffer-recycling function for the ports of core
// c — what click.Router.Kill calls for dropped packets.
func (d *DUT) RecycleFor(c int) func(ec *click.ExecCtx, p *pktbuf.Packet) {
	ports := d.PortsFor[c]
	return func(ec *click.ExecCtx, p *pktbuf.Packet) {
		// Identify the origin port from the descriptor when possible.
		origin := 0
		if p.Meta != nil && p.Meta.L.Has(layout.FieldPort) {
			origin = int(p.Meta.Peek(layout.FieldPort))
		} else if p.Mbuf != nil {
			origin = int(p.Mbuf.Peek(layout.FieldPort))
		}
		port, ok := ports[origin]
		if !ok {
			port = ports[0]
		}
		switch d.Opts.Model {
		case click.XChange:
			if cb, ok := d.bindings[port].(*xchg.CustomBinding); ok {
				cb.Release(p)
			}
			port.ProvideBuffers([]*pktbuf.Packet{p})
		case click.Copying:
			if p.Meta != nil && ec.Rt.PacketPool != nil {
				ec.Rt.PacketPool.Put(ec.Core, p.Meta)
				p.Meta = nil
			}
			// A rejected put is a double free; the pool counted it and
			// kept its ledger intact, and the audit reports it.
			_ = d.mempools[port].Put(ec.Core, p)
		default:
			_ = d.mempools[port].Put(ec.Core, p)
		}
	}
}

// BuildRouters builds one router per core from a parsed graph
// (FastClick's thread model: each core runs the whole graph on its own
// queue).
func (d *DUT) BuildRouters(g *click.Graph) ([]*click.Router, error) {
	var routers []*click.Router
	for c := 0; c < d.Opts.Cores; c++ {
		env := click.BuildEnv{
			Opt:        d.Opts.Opt,
			Model:      d.Opts.Model,
			Heap:       d.Heap,
			Static:     d.Static,
			Huge:       d.Huge,
			Ports:      d.PortsFor[c],
			MetaLayout: d.Opts.MetaLayout,
			Profile:    d.Opts.Profile,
			Seed:       d.Opts.Seed + uint64(c),
			Prewarm:    d.machFor(c).Sys.Prewarm,
		}
		rt, err := click.Build(g, env)
		if err != nil {
			return nil, err
		}
		rt.Recycle = d.RecycleFor(c)
		rt.Tel = d.Trackers[c]
		rt.Overload = d.Ctl(c)
		if d.Opts.FlowLog != nil {
			fc := d.Opts.FlowLog.Core(c)
			for _, inst := range rt.Instances {
				if h, ok := inst.El.(flowlog.Hookable); ok {
					h.BindFlowLog(fc)
				}
			}
		}
		if d.Opts.Model == click.XChange && rt.Prof != nil {
			// Attach the profile to every live X-Change descriptor pool
			// this core's ports use.
			for _, port := range d.PortsFor[c] {
				if cb, ok := d.bindings[port].(*xchg.CustomBinding); ok {
					cb.Pool.SetProfile(rt.Prof)
				}
			}
		}
		routers = append(routers, rt)
	}
	return routers, nil
}

// Run assembles a DUT, builds the Click configuration, offers traffic,
// and measures. This is the single entry point the experiments and the
// CLI use.
func Run(config string, o Options) (*Result, error) {
	g, err := click.Parse(config)
	if err != nil {
		return nil, err
	}
	return RunGraph(g, o)
}

// RunGraph is Run for an already-parsed (possibly mill-transformed) graph.
func RunGraph(g *click.Graph, o Options) (*Result, error) {
	o = o.withDefaults()
	d, err := NewDUT(o)
	if err != nil {
		return nil, err
	}
	routers, err := d.BuildRouters(g)
	if err != nil {
		return nil, err
	}
	engines := make([]Engine, len(routers))
	for i, rt := range routers {
		engines[i] = &clickEngine{rt: rt, core: d.Cores[i]}
	}
	res, err := d.Drive(engines)
	if err != nil {
		return nil, err
	}
	res.Routers = routers
	if o.Profile && len(routers) > 0 {
		res.Prof = routers[0].Prof
	}
	return res, nil
}

// RunEngines assembles a DUT and drives one custom engine per core —
// the entry point for the non-Click baselines (BESS, VPP, l2fwd).
func RunEngines(o Options, build func(d *DUT, core int) (Engine, error)) (*Result, error) {
	o = o.withDefaults()
	d, err := NewDUT(o)
	if err != nil {
		return nil, err
	}
	engines := make([]Engine, o.Cores)
	for c := 0; c < o.Cores; c++ {
		if engines[c], err = build(d, c); err != nil {
			return nil, err
		}
	}
	return d.Drive(engines)
}

// clickEngine adapts a Router to the Engine interface.
type clickEngine struct {
	rt   *click.Router
	core *machine.Core
	ec   click.ExecCtx
}

func (e *clickEngine) Step(core *machine.Core, now float64) int {
	e.ec.Core = core
	e.ec.Now = now
	e.ec.Rt = e.rt
	return e.rt.Step(&e.ec)
}

// DropStats exposes the router's reason-coded drops to the harness.
func (e *clickEngine) DropStats() *stats.DropCounters { return &e.rt.DropStats }

// TxBacklog sums packets queued behind full TX rings across the router's
// output elements.
func (e *clickEngine) TxBacklog() int {
	total := 0
	for _, inst := range e.rt.Instances {
		if tb, ok := inst.El.(interface{ TxBacklog() int }); ok {
			total += tb.TxBacklog()
		}
	}
	return total
}

// Occupancy reports the worst fill fraction across the router's
// buffering elements — the engine-side component of the overload
// controller's occupancy signal.
func (e *clickEngine) Occupancy() float64 {
	worst := 0.0
	for _, inst := range e.rt.Instances {
		if oc, ok := inst.El.(interface{ OccupancyFrac() float64 }); ok {
			if f := oc.OccupancyFrac(); f > worst {
				worst = f
			}
		}
	}
	return worst
}

// DrainRestart flushes every buffering element in the router — the
// watchdog's self-healing escalation. Flushed packets are booked under
// DropOverloadRestart and held backpressure is released.
func (e *clickEngine) DrainRestart(core *machine.Core, now float64) int {
	e.ec.Core = core
	e.ec.Now = now
	e.ec.Rt = e.rt
	if e.ec.Tel == nil {
		e.ec.Tel = e.rt.Tel
	}
	n := 0
	for _, inst := range e.rt.Instances {
		if dre, ok := inst.El.(interface{ DrainRestart(*click.ExecCtx) int }); ok {
			n += dre.DrainRestart(&e.ec)
		}
	}
	return n
}

// dropStatser, txBacklogger, occupier, and drainRestarter are the
// optional engine interfaces the harness aggregates over.
type dropStatser interface{ DropStats() *stats.DropCounters }
type txBacklogger interface{ TxBacklog() int }
type occupier interface{ Occupancy() float64 }
type drainRestarter interface {
	DrainRestart(core *machine.Core, now float64) int
}

// StallError reports a run the watchdog killed: work was pending but
// nothing progressed for longer than the watchdog budget. Snapshot
// carries the datapath state for diagnosis.
type StallError struct {
	NowNS          float64
	LastProgressNS float64
	Snapshot       string
}

// Error implements error.
func (e *StallError) Error() string {
	return fmt.Sprintf("testbed: pipeline stalled: no progress since %.0f ns (now %.0f ns, budget exceeded)\n%s",
		e.LastProgressNS, e.NowNS, e.Snapshot)
}

// snapshot renders the datapath state for a StallError.
func (d *DUT) snapshot(engines []Engine) string {
	var b strings.Builder
	for _, n := range d.NICs {
		fmt.Fprintf(&b, "  %s\n", n)
	}
	for c := range d.PortsFor {
		for id := 0; id < d.Opts.NICs; id++ {
			port, ok := d.PortsFor[c][id]
			if !ok {
				continue
			}
			dev := port.Dev
			fmt.Fprintf(&b, "  core%d port%d: drops=[%s] spare=%d posted=%d pendingRx=%d inflightTx=%d refillShort=%d\n",
				c, id, port.Drops.String(), port.SpareCount(),
				dev.PostedCount(), dev.PendingCount(), dev.InflightCount(),
				port.Stats.RefillShort)
		}
	}
	for i, e := range engines {
		if tb, ok := e.(txBacklogger); ok {
			fmt.Fprintf(&b, "  engine%d: txBacklog=%d\n", i, tb.TxBacklog())
		}
	}
	return b.String()
}

// Audit reconciles every buffer ledger after a drained run; any
// discrepancy is a leak (or a detected double free) and returns an
// error naming it. The invariant: every buffer is either free in its
// pool or held by a NIC ring, and every X-Change descriptor is back in
// its pool.
func (d *DUT) Audit() error {
	// Ring holdings per queue (ports map 1:1 onto (nic, queue) pairs).
	held := 0
	for _, ports := range d.PortsFor {
		for _, port := range ports {
			held += port.Dev.PostedCount() + port.Dev.PendingCount() + port.Dev.InflightCount()
		}
	}
	if d.Opts.Model == click.XChange {
		spare := 0
		for _, ports := range d.PortsFor {
			for _, port := range ports {
				spare += port.SpareCount()
				if cb, ok := d.bindings[port].(*xchg.CustomBinding); ok {
					if n := cb.Pool.Outstanding(); n != 0 {
						return fmt.Errorf("testbed: port %d: %d X-Change descriptors leaked", port.ID, n)
					}
				}
			}
		}
		if spare+held != d.rawBufTotal {
			return fmt.Errorf("testbed: raw buffer leak: %d spare + %d in rings != %d allocated",
				spare, held, d.rawBufTotal)
		}
		return nil
	}
	outstanding, doubleFrees := 0, uint64(0)
	for _, pool := range d.mempools {
		outstanding += pool.Outstanding()
		doubleFrees += pool.DoubleFrees
	}
	if doubleFrees > 0 {
		return fmt.Errorf("testbed: %d double frees detected", doubleFrees)
	}
	if outstanding != held {
		return fmt.Errorf("testbed: mempool leak: %d outstanding != %d held by rings",
			outstanding, held)
	}
	return nil
}

// srcHead is the pending head frame of one traffic source.
type srcHead struct {
	frame []byte
	ns    float64
	ok    bool
}

// driver holds one Drive run's state. It replaces the closure nest the
// loop used to be built from: the per-depart probe and the per-iteration
// helpers are methods, so the steady-state path carries no captured-
// variable indirection and allocates nothing per poll.
type driver struct {
	d       *DUT
	o       Options
	engines []Engine

	// Fault engine (nil in clean runs) and wire-level drop ledger.
	fe        *faults.Engine
	wireDrops stats.DropCounters

	// Traffic sources and their pending head frames.
	sources []trafficgen.Source
	heads   []srcHead
	buf     [][]byte // owned copies of head frames
	offered uint64

	// Measurement probes. e2e is the full-run wire-to-wire latency
	// histogram (post-warmup, like lat) the report percentiles come
	// from; nil when telemetry is off.
	lat            *stats.LatencyRecorder
	e2e            *trace.Hist
	departed       uint64
	measuredPkts   uint64
	measuredBytes  uint64
	measureStartNS float64
	lastDepartNS   float64
	startCounters  []machine.Counters
	warmup         uint64

	// Interval snapshots: occupancy + progress sampled on the simulated
	// clock, so transients (fault windows, ring shrink) stay visible.
	intervals    []telemetry.Interval
	nextSampleNS float64
	lastSampleNS float64
	lastSampleTx uint64

	// Overload control-plane observation cadence (per core) and the
	// per-class latency probes. Empty-poll rates are deltas between
	// observations, so the last-seen counters ride along.
	obsEveryNS       float64
	nextObsNS        []float64
	lastPolls        []uint64
	lastEmpty        []uint64
	classLat         []*trace.Hist
	watchdogRestarts uint64
}

// observe feeds core ci's instantaneous signals to its overload
// controller on the dwell-derived cadence.
func (dr *driver) observe(ci int, now float64) {
	if dr.d.Ctl(ci) == nil || now < dr.nextObsNS[ci] {
		return
	}
	dr.nextObsNS[ci] = now + dr.obsEveryNS
	dr.d.observeCore(dr.engines[ci], ci, now, &dr.lastPolls[ci], &dr.lastEmpty[ci])
}

// observeCore reads core c's instantaneous signals — worst ring/queue
// occupancy, empty-poll rate since the last observation, latency p99 —
// and feeds them to the core's overload controller. lastPolls/lastEmpty
// carry the PMD poll counters between observations for the rate delta.
// Shared between the simulated driver and the wall-clock wire loop.
func (d *DUT) observeCore(eng Engine, c int, now float64, lastPolls, lastEmpty *uint64) {
	ctl := d.Ctl(c)
	if ctl == nil {
		return
	}
	var occ, p99 float64
	var polls, empty uint64
	for _, port := range d.PortsFor[c] {
		dev := port.Dev
		if f := float64(dev.PendingCount()) / float64(dev.RXRingSize()); f > occ {
			occ = f
		}
		if f := float64(dev.InflightCount()) / float64(dev.TXRingSize()); f > occ {
			occ = f
		}
		polls += port.Stats.Polls
		empty += port.Stats.EmptyPolls
		if port.LatHist != nil {
			if v := port.LatHist.Quantile(0.99); v > p99 {
				p99 = v
			}
		}
	}
	if oc, ok := eng.(occupier); ok {
		if f := oc.Occupancy(); f > occ {
			occ = f
		}
	}
	var emptyRate float64
	if dp := polls - *lastPolls; dp > 0 {
		emptyRate = float64(empty-*lastEmpty) / float64(dp)
	}
	*lastPolls, *lastEmpty = polls, empty
	ctl.Observe(now, overload.Signals{Occupancy: occ, EmptyPollRate: emptyRate, P99NS: p99})
}

// pull advances source n to its next frame.
func (dr *driver) pull(n int) {
	f, ns, ok := dr.sources[n].Next()
	if ok {
		if dr.buf[n] == nil {
			dr.buf[n] = make([]byte, 2048)
		}
		copy(dr.buf[n], f)
		dr.heads[n] = srcHead{frame: dr.buf[n][:len(f)], ns: ns, ok: true}
	} else {
		dr.heads[n] = srcHead{}
	}
}

// deliverUntil pushes every frame that has arrived by time t into the
// NICs (RSS-spread across core queues). Wire-level faults apply here,
// between the generator and the DUT's MAC: a frame is counted as offered
// first, then may be consumed (drop, link-down) or mutated (corruption,
// truncation) before the NIC sees it.
func (dr *driver) deliverUntil(t float64) {
	for n := range dr.heads {
		for dr.heads[n].ok && dr.heads[n].ns <= t {
			frame, ns := dr.heads[n].frame, dr.heads[n].ns
			dr.offered++
			if dr.fe != nil {
				wr := dr.fe.Wire(frame, ns)
				if wr.Dropped {
					dr.wireDrops.Add(wr.Reason, 1)
					dr.pull(n)
					continue
				}
				frame = wr.Frame
			}
			if dr.o.RxTap != nil {
				dr.o.RxTap(n, frame, ns)
			}
			// RSS hashes the frame as received — a corrupted header
			// steers to whatever queue the flipped bits select, as on
			// real hardware.
			q := dr.d.NICs[n].RSSQueue(frame)
			dr.d.NICs[n].Deliver(q, frame, ns)
			dr.pull(n)
		}
	}
}

func (dr *driver) nextArrival() float64 {
	t := math.Inf(1)
	for n := range dr.heads {
		if dr.heads[n].ok && dr.heads[n].ns < t {
			t = dr.heads[n].ns
		}
	}
	return t
}

// onDepart is the NICs' departure probe: latency/throughput measurement
// past the warmup prefix, plus the optional user tap (which observes
// every departure, warmup included).
func (dr *driver) onDepart(p *pktbuf.Packet, departNS float64) {
	dr.departed++
	if dr.departed > dr.warmup {
		if dr.measureStartNS < 0 {
			dr.measureStartNS = departNS
			for i, c := range dr.d.Cores {
				dr.startCounters[i] = c.Snapshot()
			}
		}
		dr.lat.Record(departNS - p.ArrivalNS)
		dr.e2e.Record(departNS - p.ArrivalNS)
		if dr.classLat != nil {
			dr.classLat[overload.ClassOf(p.Bytes())].Record(departNS - p.ArrivalNS)
		}
		dr.measuredPkts++
		dr.measuredBytes += uint64(p.Len())
		if departNS > dr.lastDepartNS {
			dr.lastDepartNS = departNS
		}
	}
	if dr.o.Tap != nil {
		dr.o.Tap(p.Bytes(), departNS)
	}
}

func (dr *driver) sourcesDone() bool {
	for n := range dr.heads {
		if dr.heads[n].ok {
			return false
		}
	}
	return true
}

func (dr *driver) pendingRx() bool {
	for _, n := range dr.d.NICs {
		for q := 0; q < dr.o.Cores; q++ {
			if n.RX(q).PendingCount() > 0 {
				return true
			}
		}
	}
	return false
}

// txBacklog sums packets the engines still hold behind full TX rings.
func (dr *driver) txBacklog() int {
	total := 0
	for _, e := range dr.engines {
		if tb, ok := e.(txBacklogger); ok {
			total += tb.TxBacklog()
		}
	}
	return total
}

func (dr *driver) sample(now float64) {
	if !dr.o.Telemetry || dr.o.SnapshotIntervalNS <= 0 || now < dr.nextSampleNS {
		return
	}
	var pendRx, posted uint64
	for _, n := range dr.d.NICs {
		for q := 0; q < dr.o.Cores; q++ {
			pendRx += uint64(n.RX(q).PendingCount())
			posted += uint64(n.RX(q).PostedCount())
		}
	}
	iv := telemetry.Interval{
		TNS:       now,
		Offered:   dr.offered,
		TxWire:    dr.departed,
		PendingRx: pendRx,
		TxBacklog: uint64(dr.txBacklog()),
		Posted:    posted,
	}
	if dt := now - dr.lastSampleNS; dt > 0 {
		iv.Mpps = float64(dr.departed-dr.lastSampleTx) * 1e3 / dt
	}
	dr.intervals = append(dr.intervals, iv)
	dr.lastSampleNS, dr.lastSampleTx = now, dr.departed
	for now >= dr.nextSampleNS {
		dr.nextSampleNS += dr.o.SnapshotIntervalNS
	}
}

// Drive runs the offered load through the engines (one per core) and
// measures. It is exported so non-Click engines (BESS, VPP, l2fwd) reuse
// the same harness.
func (d *DUT) Drive(engines []Engine) (*Result, error) {
	o := d.Opts
	if len(engines) != o.Cores {
		return nil, fmt.Errorf("testbed: %d engines for %d cores", len(engines), o.Cores)
	}

	dr := &driver{
		d:              d,
		o:              o,
		engines:        engines,
		measureStartNS: -1,
		lat:            stats.NewLatencyRecorder(1 << 19),
		startCounters:  make([]machine.Counters, o.Cores),
		warmup:         uint64(o.Warmup),
		nextSampleNS:   o.SnapshotIntervalNS,
	}
	if o.Telemetry {
		dr.e2e = trace.NewHist()
	}
	if len(d.Ctls) > 0 {
		// Observe a few times per dwell window so the state machine sees
		// fresh signals without perturbing the steady-state loop.
		dr.obsEveryNS = d.Ctls[0].DwellNS() / 4
		if dr.obsEveryNS <= 0 {
			dr.obsEveryNS = 12.5e3
		}
		dr.nextObsNS = make([]float64, o.Cores)
		dr.lastPolls = make([]uint64, o.Cores)
		dr.lastEmpty = make([]uint64, o.Cores)
		dr.classLat = make([]*trace.Hist, overload.NumClasses)
		for i := range dr.classLat {
			dr.classLat[i] = trace.NewHist()
		}
	}

	// Fault engine: built per run, wired into the layers' hooks. A clean
	// run leaves every hook nil, so the only datapath cost of the fault
	// layer is one nil check per hook site.
	if o.Faults != nil && len(o.Faults.Clauses) > 0 {
		seed := o.FaultSeed
		if seed == 0 {
			seed = o.Seed ^ 0x5eedfa17 // distinct stream from the traffic seed
		}
		dr.fe = faults.NewEngine(o.Faults, seed)
		for _, n := range d.NICs {
			n.FaultRxStall = dr.fe.RxStall
			n.FaultTxSlow = dr.fe.TxSlowFactor
		}
		for _, pool := range d.mempools {
			pool.FaultDeplete = dr.fe.DepleteMempool
		}
		for _, ports := range d.PortsFor {
			for _, port := range ports {
				port.FaultDescDeplete = dr.fe.DepleteDesc
			}
		}
		d.traceFaults(dr.fe)
	}

	// Sources: one per NIC.
	dr.sources = make([]trafficgen.Source, o.NICs)
	for n := 0; n < o.NICs; n++ {
		cfg := trafficgen.Config{
			Seed:     o.Seed + uint64(100+n),
			RateGbps: o.RateGbps,
			Count:    o.Packets,
		}
		switch {
		case o.Traffic != nil:
			dr.sources[n] = o.Traffic(n, cfg)
		case o.FixedSize > 0:
			cfg.TCPShare, cfg.UDPShare, cfg.ICMPShare = 0.9, 0.08, 0.02
			dr.sources[n] = trafficgen.NewFixedSize(cfg, o.FixedSize)
		default:
			dr.sources[n] = trafficgen.NewCampus(cfg)
		}
	}
	dr.heads = make([]srcHead, o.NICs)
	dr.buf = make([][]byte, o.NICs)
	for n := range dr.sources {
		dr.pull(n)
	}

	for _, n := range d.NICs {
		n.OnDepart = dr.onDepart
	}

	return dr.run()
}

// run is the main loop plus result assembly: always run the core that is
// furthest behind in simulated time; fast-forward idle cores to the next
// event. The run ends when the sources are drained, every ring is empty,
// every TX backlog has flushed, and every core has gone one full pass
// without work.
func (dr *driver) run() (*Result, error) {
	d, o, engines := dr.d, dr.o, dr.engines

	// Watchdog: trip when work is pending but neither the generators,
	// the engines, nor the wire have progressed for watchdogNS of
	// simulated time — a livelocked or wedged pipeline.
	watchdogNS := o.WatchdogNS
	if watchdogNS == 0 {
		watchdogNS = 50e6 // 50 simulated ms
	}
	var lastProgressNS float64
	var lastOffered, lastDeparted uint64
	restarted := false // one drain-and-restart per stall window

	idleStreak := 0
	for {
		ci := 0
		for i, c := range d.Cores {
			if c.NowNS() < d.Cores[ci].NowNS() {
				ci = i
			}
		}
		core := d.Cores[ci]
		now := core.NowNS()
		dr.deliverUntil(now)
		dr.sample(now)
		dr.observe(ci, now)
		moved := engines[ci].Step(core, now)
		if moved > 0 || dr.offered != lastOffered || dr.departed != lastDeparted {
			lastProgressNS = now
			lastOffered, lastDeparted = dr.offered, dr.departed
			restarted = false
		}
		if moved > 0 {
			idleStreak = 0
			continue
		}
		idleStreak++
		pending := !dr.sourcesDone() || dr.pendingRx() || dr.txBacklog() > 0
		if watchdogNS > 0 && pending && now-lastProgressNS > watchdogNS {
			// With the control plane armed, the first trip self-heals:
			// drain every buffering element (booked as overload-restart
			// drops), release stuck backpressure, and force the health
			// machines into Recovering. Only a second consecutive trip —
			// no progress since the restart — fails the run.
			if len(d.Ctls) > 0 && !restarted {
				restarted = true
				for i, e := range engines {
					if dre, ok := e.(drainRestarter); ok {
						dre.DrainRestart(d.Cores[i], d.Cores[i].NowNS())
					}
				}
				for c := 0; c < o.Cores; c++ {
					d.Ctl(c).ForceRecover(now)
					d.Ctl(c).ResetPressure(now)
				}
				dr.watchdogRestarts++
				lastProgressNS = now
				continue
			}
			snap := d.snapshot(engines)
			if path := d.dumpStallTrace(); path != "" {
				snap += fmt.Sprintf("  flight-recorder dump: %s\n", path)
			}
			return nil, &StallError{
				NowNS:          now,
				LastProgressNS: lastProgressNS,
				Snapshot:       snap,
			}
		}
		if !pending {
			if idleStreak > 2*o.Cores {
				break
			}
			core.Idle(now + 100)
			continue
		}
		// Jump to the next interesting time for this core.
		next := dr.nextArrival()
		for n := range d.NICs {
			if r := d.NICs[n].RX(ci).NextReadyNS(); r < next {
				next = r
			}
		}
		if next > now && !math.IsInf(next, 1) {
			core.Idle(next)
		} else {
			// The work belongs to another core's queue (or is a TX
			// backlog waiting for the wire); step time forward a touch
			// so it gets another chance.
			core.Idle(now + 100)
		}
	}

	res := &Result{
		Latency: dr.lat,
		Offered: dr.offered,
	}
	res.Packets = dr.measuredPkts
	res.Bytes = dr.measuredBytes
	if dr.lastDepartNS > dr.measureStartNS && dr.measureStartNS >= 0 {
		res.Duration = dr.lastDepartNS - dr.measureStartNS
	}
	// Aggregate per-core counters over the measurement window. LLC
	// counters are scoped to each core's own demand traffic, so summing
	// them reproduces the system-wide totals.
	for i, c := range d.Cores {
		delta := c.Snapshot().Delta(dr.startCounters[i])
		if i == 0 {
			res.Counters = delta
			continue
		}
		res.Counters.Instructions += delta.Instructions
		res.Counters.BusyCycles += delta.BusyCycles
		res.Counters.TLBMisses += delta.TLBMisses
		res.Counters.LLCLoads += delta.LLCLoads
		res.Counters.LLCLoadMisses += delta.LLCLoadMisses
		res.Counters.LLCStores += delta.LLCStores
		res.Counters.LLCStoreMisses += delta.LLCStoreMisses
	}
	// Drop taxonomy: every lost frame attributed to one reason, from the
	// wire through the NIC, the PMD, and the engine.
	res.DropsByReason.Merge(&dr.wireDrops)
	for _, n := range d.NICs {
		res.DropsByReason.Add(stats.DropRxNoBuf, n.Stats.RxDropNoBuf)
		res.DropsByReason.Add(stats.DropRxRingFull, n.Stats.RxDropFull)
		res.DropsByReason.Add(stats.DropRxRunt, n.Stats.RxDropRunt)
	}
	for _, ports := range d.PortsFor {
		for _, port := range ports {
			res.DropsByReason.Merge(&port.Drops)
		}
	}
	for _, e := range engines {
		if ds, ok := e.(dropStatser); ok {
			res.DropsByReason.Merge(ds.DropStats())
		}
	}
	res.Dropped = res.DropsByReason.Total()
	res.TxWire = dr.departed
	if dr.fe != nil {
		st := dr.fe.Injected
		res.FaultStats = &st
	}
	if len(d.Ctls) > 0 {
		end := 0.0
		for _, c := range d.Cores {
			if c.NowNS() > end {
				end = c.NowNS()
			}
		}
		for _, ctl := range d.Ctls {
			res.Overload = append(res.Overload, ctl.Status(end))
		}
		res.WatchdogRestarts = dr.watchdogRestarts
		res.ClassLat = dr.classLat
	}
	if o.FlowLog != nil {
		// Cut the run's flow records against the final ledgers, before
		// the report so the telemetry summary sees them.
		res.Flows = o.FlowLog.Records(&res.DropsByReason, res.TxWire)
	}
	if o.Telemetry {
		// Callers that drive engines directly (without Run) still get the
		// per-element report sections keyed off the routers.
		if res.Routers == nil {
			for _, e := range engines {
				var rt *click.Router
				if ce, ok := e.(*clickEngine); ok {
					rt = ce.rt
				}
				res.Routers = append(res.Routers, rt)
			}
		}
		res.Telemetry = d.buildReport(res, dr.lat, dr.e2e, dr.intervals)
	}
	return res, nil
}

// traceFaults mirrors fault-engine activations into the flight
// recorder: each hook is wrapped with an edge detector so a fault
// *window* appends one event when it opens, not one per packet that
// hits it. No-op when tracing is off.
func (d *DUT) traceFaults(fe *faults.Engine) {
	if d.Opts.Trace == nil {
		return
	}
	rec := d.Opts.Trace
	for _, n := range d.NICs {
		nn := n
		stalled := make([]bool, d.Opts.Cores)
		nn.FaultRxStall = func(q int, ns float64) float64 {
			until := fe.RxStall(q, ns)
			active := until > ns
			if active && q < len(stalled) && !stalled[q] {
				rec.Core(q).Fault("rx-stall")
			}
			if q < len(stalled) {
				stalled[q] = active
			}
			return until
		}
		var slowed bool
		nn.FaultTxSlow = func(ns float64) float64 {
			f := fe.TxSlowFactor(ns)
			active := f > 1
			if active && !slowed {
				// The hook carries no queue, so the event lands on the
				// first core's timeline.
				rec.Core(0).Fault("tx-slow")
			}
			slowed = active
			return f
		}
	}
	edge := func(h func(float64) bool, ct *trace.CoreTrace, name string) func(float64) bool {
		var active bool
		return func(ns float64) bool {
			hit := h(ns)
			if hit && !active {
				ct.Fault(name)
			}
			active = hit
			return hit
		}
	}
	for c, ports := range d.PortsFor {
		ct := rec.Core(c)
		for _, port := range ports {
			if pool := d.mempools[port]; pool != nil && pool.FaultDeplete != nil {
				pool.FaultDeplete = edge(pool.FaultDeplete, ct, "mempool-deplete")
			}
			if port.FaultDescDeplete != nil {
				port.FaultDescDeplete = edge(port.FaultDescDeplete, ct, "desc-deplete")
			}
		}
	}
}

// dumpStallTrace writes the flight recorder's Chrome trace to
// Options.StallTracePath (when both are configured), making a watchdog
// kill post-mortem-debuggable. Returns the path written, or "".
func (d *DUT) dumpStallTrace() string {
	o := d.Opts
	if o.Trace == nil || o.StallTracePath == "" {
		return ""
	}
	if err := os.WriteFile(o.StallTracePath, o.Trace.ChromeJSON(), 0o644); err != nil {
		return ""
	}
	return o.StallTracePath
}
