package testbed

import (
	"testing"

	"packetmill/internal/click"
	_ "packetmill/internal/elements"
	"packetmill/internal/nf"
)

// costPerPacket runs a saturated workload and reports the per-packet
// budget in core-clock-equivalent cycles (busy cycles / packets), the
// number the paper's Mpps figures translate to.
func costPerPacket(t *testing.T, config string, o Options) (cyc, instr, llcLoads float64) {
	t.Helper()
	o.RateGbps = 100
	if o.Packets == 0 {
		o.Packets = 8000
	}
	if o.FixedSize == 0 && o.Traffic == nil {
		o.FixedSize = 1024
	}
	res, err := Run(config, o)
	if err != nil {
		t.Fatal(err)
	}
	if res.Packets == 0 {
		t.Fatal("no packets measured")
	}
	n := float64(res.Packets)
	return res.Counters.BusyCycles / n,
		float64(res.Counters.Instructions) / n,
		float64(res.Counters.LLCLoads) / n
}

// TestCalibrationReport logs the per-packet budgets for the key operating
// points the paper's numbers imply. It asserts only the wide bands; the
// log output is the tuning dashboard.
func TestCalibrationReport(t *testing.T) {
	type scenario struct {
		name   string
		config string
		opts   Options
		minCyc float64
		maxCyc float64
	}
	scenarios := []scenario{
		// Paper: X-Change forwarder saturates an 11.8-Mpps queue at
		// 2.2 GHz → ≈ 150–190 cycle-equivalents per packet.
		{"forwarder/x-change@3.0", nf.Forwarder(0, 32), Options{FreqGHz: 3.0, Model: click.XChange}, 90, 220},
		// Fig 5a: Overlaying ≈ 9.5–10 Mpps at 3 GHz → ≈ 300 cyc.
		{"forwarder/overlay@3.0", nf.Forwarder(0, 32), Options{FreqGHz: 3.0, Model: click.Overlaying}, 130, 280},
		// Fig 5a: Copying ≈ 7.5–8 Mpps at 3 GHz → ≈ 380 cyc.
		{"forwarder/copying@3.0", nf.Forwarder(0, 32), Options{FreqGHz: 3.0, Model: click.Copying}, 250, 440},
		// Table 1: vanilla router 8.66 Mpps at 3 GHz → ≈ 346 cyc.
		{"router/vanilla@3.0", nf.Router(32), Options{FreqGHz: 3.0, Model: click.Copying}, 350, 580},
		// Table 1: all-opt router 10.41 Mpps at 3 GHz → ≈ 288 cyc.
		{"router/all@3.0", nf.Router(32), Options{FreqGHz: 3.0, Model: click.Copying, Opt: click.AllOpts()}, 300, 540},
	}
	for _, s := range scenarios {
		cyc, instr, llc := costPerPacket(t, s.config, s.opts)
		t.Logf("%-26s %7.1f cyc/pkt %6.1f instr/pkt %5.2f LLC-loads/pkt", s.name, cyc, instr, llc)
		if cyc < s.minCyc || cyc > s.maxCyc {
			t.Errorf("%s: %.1f cyc/pkt outside calibration band [%v, %v]", s.name, cyc, s.minCyc, s.maxCyc)
		}
	}
}

// TestTable1Deltas checks the *relative* savings of the code
// optimizations against the paper's Table 1 (per-packet cycles saved at
// 3 GHz: devirtualization ≈ 15, constants ≈ 2, static graph ≈ 50 vs
// vanilla). Bands are generous — shape, not absolute numbers.
func TestTable1Deltas(t *testing.T) {
	cost := func(opt click.OptLevel) float64 {
		cyc, _, _ := costPerPacket(t, nf.Router(32), Options{FreqGHz: 3.0, Model: click.Copying, Opt: opt})
		return cyc
	}
	vanilla := cost(click.OptLevel{})
	devirt := cost(click.OptLevel{Devirtualize: true})
	constant := cost(click.OptLevel{Devirtualize: true, ConstEmbed: true})
	static := cost(click.OptLevel{Devirtualize: true, ConstEmbed: true, StaticGraph: true})
	t.Logf("vanilla=%.1f devirt=%.1f const=%.1f static=%.1f cyc/pkt", vanilla, devirt, constant, static)
	dDevirt := vanilla - devirt
	dConst := devirt - constant
	dStatic := constant - static
	if dDevirt < 3 || dDevirt > 60 {
		t.Errorf("devirtualization delta %.1f cyc/pkt outside [3,60]", dDevirt)
	}
	if dConst < 0.5 || dConst > 30 {
		t.Errorf("constant-embedding delta %.1f cyc/pkt outside [0.5,30]", dConst)
	}
	if dStatic < 10 || dStatic > 90 {
		t.Errorf("static-graph delta %.1f cyc/pkt outside [10,90]", dStatic)
	}
}
