// Report assembly: folding the run's ledgers — per-core perf counters,
// per-queue NIC/PMD counters, span attribution, interval snapshots — into
// one telemetry.Report.
package testbed

import (
	"fmt"

	"packetmill/internal/flowlog"
	"packetmill/internal/overload"
	"packetmill/internal/stats"
	"packetmill/internal/telemetry"
	"packetmill/internal/trace"
)

// buildReport assembles the telemetry report after a driven run. Core and
// span numbers cover the whole run (trackers attribute from time zero, so
// the coverage self-check is exact); Totals keeps the measurement-window
// view the text reports use.
func (d *DUT) buildReport(res *Result, lat *stats.LatencyRecorder, e2e *trace.Hist,
	intervals []telemetry.Interval) *telemetry.Report {
	o := d.Opts
	r := &telemetry.Report{
		Schema: telemetry.Schema,
		Config: telemetry.RunConfig{
			Model:     o.Model.String(),
			Opt:       o.Opt.String(),
			FreqGHz:   o.FreqGHz,
			Cores:     o.Cores,
			NICs:      o.NICs,
			RateGbps:  o.RateGbps,
			Packets:   o.Packets,
			FixedSize: o.FixedSize,
			Seed:      o.Seed,
		},
		Totals: telemetry.Totals{
			Offered:      res.Offered,
			TxWire:       res.TxWire,
			Dropped:      res.Dropped,
			Gbps:         res.Gbps(),
			Mpps:         res.Mpps(),
			DurationNS:   res.Duration,
			Instructions: res.Counters.Instructions,
			BusyCycles:   res.Counters.BusyCycles,
			IPC:          res.Counters.IPC(),
			LLCLoads:     res.Counters.LLCLoads,
			LLCMisses:    res.Counters.LLCLoadMisses,
			TLBMisses:    res.Counters.TLBMisses,
		},
		Drops:     res.DropsByReason.Map(),
		Intervals: intervals,
	}
	if o.Faults != nil && len(o.Faults.Clauses) > 0 {
		r.Config.Faults = fmt.Sprintf("%d clauses", len(o.Faults.Clauses))
	}

	// Latency: full-run totals (see telemetry.LatencyUS for the unit
	// contract). The histogram covers every post-warmup departure, so
	// its percentiles are exact up to bucket width; count/min/mean/max
	// come from the recorder's exact accumulators. The recorder's
	// reservoir percentiles remain only as the fallback when the
	// histogram is absent.
	s := lat.Summarize()
	r.LatencyUS = telemetry.LatencyUS{
		Count: s.Count,
		Min:   stats.MicrosFromNS(s.Min),
		Mean:  stats.MicrosFromNS(s.Mean),
		P50:   stats.MicrosFromNS(s.P50),
		P90:   stats.MicrosFromNS(s.P90),
		P99:   stats.MicrosFromNS(s.P99),
		P999:  stats.MicrosFromNS(s.P999),
		Max:   stats.MicrosFromNS(s.Max),
	}
	if e2e.Count() > 0 {
		h := telemetry.LatencyFromHist(e2e)
		r.LatencyUS.P50, r.LatencyUS.P90 = h.P50, h.P90
		r.LatencyUS.P99, r.LatencyUS.P999 = h.P99, h.P999
	}

	// Per-core ledgers, full run: the span trackers started at time zero,
	// so attribution must be compared against the same window.
	coreBusy := make([]float64, len(d.Cores))
	for i, c := range d.Cores {
		ct := c.Snapshot()
		coreBusy[i] = ct.BusyCycles
		cr := telemetry.CoreReport{
			Core:          c.ID,
			Instructions:  ct.Instructions,
			BusyCycles:    ct.BusyCycles,
			BusyNS:        ct.BusyCycles / c.FreqGHz,
			IdleNS:        ct.IdleNS,
			WallNS:        ct.WallNS,
			IPC:           ct.IPC(),
			LLCLoads:      ct.LLCLoads,
			LLCLoadMisses: ct.LLCLoadMisses,
			TLBMisses:     ct.TLBMisses,
		}
		if i < len(d.Trackers) {
			cr.AttributedCycles = d.Trackers[i].AttributedCycles()
			if ct.BusyCycles > 0 {
				cr.Coverage = cr.AttributedCycles / ct.BusyCycles
			}
		}
		r.Cores = append(r.Cores, cr)
	}

	// Per-queue ledgers: NIC-side delivery/drop counters merged with the
	// PMD port that polls the queue.
	for c := range d.PortsFor {
		for id := 0; id < o.NICs; id++ {
			port, ok := d.PortsFor[c][id]
			if !ok {
				continue
			}
			rxs := port.Dev.RXStats()
			txs := port.Dev.TXStats()
			r.Queues = append(r.Queues, telemetry.QueueReport{
				NIC:             port.Dev.PortName(),
				Queue:           port.Dev.QueueID(),
				Core:            c,
				RxDelivered:     rxs.Delivered,
				RxBytes:         rxs.Bytes,
				RxDropNoBuf:     rxs.DropNoBuf,
				RxDropFull:      rxs.DropFull,
				RxDropRunt:      rxs.DropRunt,
				TxSent:          txs.Sent,
				TxBytes:         txs.Bytes,
				TxDropFull:      txs.DropFull,
				TxDropTransient: txs.DropTransient,
				TxDropOversize:  txs.DropOversize,
				Polls:           port.Stats.Polls,
				EmptyPolls:      port.Stats.EmptyPolls,
				RxPackets:       port.Stats.RxPackets,
				TxPackets:       port.Stats.TxPackets,
				RefillShort:     port.Stats.RefillShort,
				RefillShortBufs: port.Stats.RefillShortBufs,
				PoolExhausted:   port.Drops.Get(stats.DropPoolExhausted),
				Posted:          uint64(port.Dev.PostedCount()),
				PendingRx:       uint64(port.Dev.PendingCount()),
			})
		}
	}

	// Overload control plane: one entry per core, state names spelled
	// out. WatchdogRestarts is run-level (every engine drains together),
	// so each core entry carries the same count.
	for c, st := range res.Overload {
		timeIn := make(map[string]float64, overload.NumStates)
		for s := overload.State(0); s < overload.NumStates; s++ {
			timeIn[s.String()] = st.TimeInNS[s] / 1e3
		}
		r.Overload = append(r.Overload, telemetry.OverloadCoreReport{
			Core:             c,
			Policy:           st.Policy.String(),
			State:            st.State.String(),
			Transitions:      st.Transitions,
			TimeInUS:         timeIn,
			AdmitOK:          st.AdmitOK,
			Sheds:            st.Sheds,
			Pauses:           st.Pauses,
			PausedUS:         st.PausedNS / 1e3,
			WatchdogRestarts: res.WatchdogRestarts,
		})
	}

	// Flow tables: one entry per (core, element instance) that tracks
	// flows — the NAT's conntrack shard, standalone ConnTrackers. The
	// element fills the ledger; core and instance name are ours.
	for c, rt := range res.Routers {
		if rt == nil {
			continue
		}
		for _, inst := range rt.Instances {
			fr, ok := inst.El.(telemetry.FlowReporter)
			if !ok {
				continue
			}
			cr := fr.FlowReport()
			cr.Core = c
			cr.Element = inst.Name
			r.Conntrack = append(r.Conntrack, cr)
		}
	}

	if d.Opts.FlowLog != nil {
		r.Flows = flowSummaryReport(res.Flows)
	}

	r.BuildSpans(d.Trackers, coreBusy)
	return r
}

// flowSummaryReport maps a record set onto the report's verdict-keyed
// roll-up (telemetry stays free of flowlog's types).
func flowSummaryReport(recs []flowlog.Record) *telemetry.FlowSummary {
	s := flowlog.Summarize(recs)
	fs := &telemetry.FlowSummary{
		Records:         s.Records,
		VerdictFlows:    map[string]uint64{},
		VerdictPackets:  map[string]uint64{},
		VerdictBytes:    map[string]uint64{},
		TxSidePackets:   s.TxSidePackets,
		DropSidePackets: s.DropSidePackets,
		Unattributed:    s.Unattributed,
		LatencySamples:  s.LatSamples,
	}
	for v := flowlog.Verdict(0); v < flowlog.NumVerdicts; v++ {
		if s.Flows[v] == 0 && s.Packets[v] == 0 {
			continue
		}
		fs.VerdictFlows[v.String()] = s.Flows[v]
		fs.VerdictPackets[v.String()] = s.Packets[v]
		fs.VerdictBytes[v.String()] = s.Bytes[v]
	}
	for _, t := range flowlog.TopByBytes(recs, 5) {
		fs.TopFlows = append(fs.TopFlows, telemetry.TopFlow{
			Key:        flowlog.FormatKey(t.Key),
			Verdict:    t.Verdict.String(),
			State:      t.State.String(),
			Packets:    t.Packets,
			Bytes:      t.Bytes,
			DurationUS: t.DurationNS() / 1e3,
			LatAvgUS:   t.LatAvgNS() / 1e3,
		})
	}
	return fs
}
