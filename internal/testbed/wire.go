// Wire serving: driving an engine against live internal/wire ports
// instead of the simulated two-node harness. The same DUT assembly —
// mempools, bindings, routers, telemetry — runs here; what changes is
// the clock (wall time, since real sockets do not advance a simulated
// calendar) and the exit condition (idle timeout or packet budget
// instead of a drained traffic source).
package testbed

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"packetmill/internal/cache"
	"packetmill/internal/click"
	"packetmill/internal/dpdk"
	"packetmill/internal/machine"
	"packetmill/internal/memsim"
	"packetmill/internal/nic"
	"packetmill/internal/telemetry"
	"packetmill/internal/xchg"
)

// NewWireDUT assembles a single-core DUT whose PMD ports sit on the
// given live devices (internal/wire ports) instead of simulated
// adapters. Device i appears as Click PORT i.
func NewWireDUT(o Options, devs []nic.Port) (*DUT, error) {
	if len(devs) == 0 {
		return nil, fmt.Errorf("testbed: wire DUT needs at least one device")
	}
	o.Cores = 1
	o.NICs = len(devs)
	o = o.withDefaults()
	memCfg := cache.DefaultSystemConfig()
	if o.DDIOWays > 0 {
		memCfg.DDIOWays = o.DDIOWays
	}
	mach := machine.New(memCfg, machine.DefaultCostModel())
	d := &DUT{
		Opts:     o,
		Mach:     mach,
		Huge:     memsim.NewArena("hugepages", memsim.HugeBase, 1<<30),
		Static:   memsim.NewArena("static", memsim.StaticBase, 512<<20),
		Heap:     memsim.NewHeap(),
		mempools: map[*dpdk.Port]*dpdk.Mempool{},
		bindings: map[*dpdk.Port]xchg.Binding{},
	}
	core := mach.AddCore(o.FreqGHz)
	d.Cores = append(d.Cores, core)
	d.PortsFor = append(d.PortsFor, map[int]*dpdk.Port{})
	// Tracing and the live exporter both need the span trackers; the
	// report itself still requires Telemetry.
	if o.Telemetry || o.Trace != nil || o.Metrics != nil {
		d.Trackers = append(d.Trackers, telemetry.NewTracker(core))
	} else {
		d.Trackers = append(d.Trackers, nil)
	}
	for i, dev := range devs {
		port, err := d.buildPortOn(i, dev)
		if err != nil {
			return nil, err
		}
		d.PortsFor[0][i] = port
	}
	d.buildControllers()
	d.attachTrace()
	return d, nil
}

// WireServeStats summarizes a wire-serving session.
type WireServeStats struct {
	// Steps is the number of scheduling rounds executed.
	Steps uint64
	// Packets counts packets moved across all rounds (RX and TX both
	// count, as in Engine.Step's contract).
	Packets uint64
}

// ServeWire drives the engines against wall-clock time until ctx is
// canceled, the engines have moved maxPackets packets (0 = no budget),
// or the datapath has been idle for idleExit (0 = no idle exit). On a
// normal exit it drains in-flight transmissions so a post-run Audit
// balances.
func (d *DUT) ServeWire(ctx context.Context, engines []Engine,
	idleExit time.Duration, maxPackets uint64) (WireServeStats, error) {
	start := time.Now()
	lastWork := start
	// On the wire the flight recorder timestamps events with wall time
	// (the simulated calendar does not advance against real sockets).
	if d.Opts.Trace != nil {
		for _, ct := range d.Opts.Trace.Cores() {
			ct.SetClock(func() float64 { return float64(time.Since(start)) })
		}
	}
	lastPublish := start
	// Overload observation on the wire runs against the wall clock; the
	// cadence is the same dwell-derived fraction the simulated driver uses.
	var obsEveryNS float64
	var nextObsNS []float64
	var obsPolls, obsEmpty []uint64
	if len(d.Ctls) > 0 {
		obsEveryNS = d.Ctls[0].DwellNS() / 4
		if obsEveryNS <= 0 {
			obsEveryNS = 12.5e3
		}
		nextObsNS = make([]float64, len(engines))
		obsPolls = make([]uint64, len(engines))
		obsEmpty = make([]uint64, len(engines))
	}
	var st WireServeStats
	for {
		select {
		case <-ctx.Done():
			d.drainWire(engines, start)
			d.publishMetrics(engines, time.Since(start))
			return st, ctx.Err()
		default:
		}
		now := float64(time.Since(start))
		for i := range nextObsNS {
			if i < len(d.Ctls) && now >= nextObsNS[i] {
				nextObsNS[i] = now + obsEveryNS
				d.observeCore(engines[i], i, now, &obsPolls[i], &obsEmpty[i])
			}
		}
		moved := 0
		for i, e := range engines {
			moved += e.Step(d.Cores[i], now)
		}
		st.Steps++
		if d.Opts.Metrics != nil && time.Since(lastPublish) >= metricsInterval {
			lastPublish = time.Now()
			d.publishMetrics(engines, time.Since(start))
		}
		if moved > 0 {
			st.Packets += uint64(moved)
			lastWork = time.Now()
			if maxPackets > 0 && st.Packets >= maxPackets {
				break
			}
			continue
		}
		if idleExit > 0 && time.Since(lastWork) > idleExit {
			break
		}
		// An empty poll on a live wire should not spin a core flat out.
		runtime.Gosched()
	}
	d.drainWire(engines, start)
	// A final snapshot so a scrape after the session (the CI check does
	// this) sees the totals, not a half-second-old view.
	d.publishMetrics(engines, time.Since(start))
	return st, nil
}

// drainWire steps the engines and reaps TX rings until nothing moves and
// nothing is in flight (bounded by a wall-clock deadline), so buffers
// make it back to their pools before an Audit.
func (d *DUT) drainWire(engines []Engine, start time.Time) {
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		now := float64(time.Since(start))
		moved := 0
		for i, e := range engines {
			moved += e.Step(d.Cores[i], now)
		}
		inflight := 0
		for c, ports := range d.PortsFor {
			for _, port := range ports {
				// An empty TxBurst still reaps departed frames.
				port.TxBurst(d.Cores[c], now, nil)
				inflight += port.Dev.InflightCount()
			}
		}
		if moved == 0 && inflight == 0 {
			return
		}
		runtime.Gosched()
	}
}

// ServeWireGraph builds routers for g on a wire DUT and serves: the
// one-call path cmd/packetmill's -io wire mode uses. The DUT is
// returned so callers can audit buffers and read telemetry after the
// session.
func ServeWireGraph(ctx context.Context, g *click.Graph, o Options,
	devs []nic.Port, idleExit time.Duration, maxPackets uint64) (*DUT, WireServeStats, error) {
	d, err := NewWireDUT(o, devs)
	if err != nil {
		return nil, WireServeStats{}, err
	}
	routers, err := d.BuildRouters(g)
	if err != nil {
		return nil, WireServeStats{}, err
	}
	engines := make([]Engine, len(routers))
	for i, rt := range routers {
		engines[i] = &clickEngine{rt: rt, core: d.Cores[i]}
	}
	st, err := d.ServeWire(ctx, engines, idleExit, maxPackets)
	return d, st, err
}
