// Wire serving: driving an engine against live internal/wire ports
// instead of the simulated two-node harness. The same DUT assembly —
// mempools, bindings, routers, telemetry — runs here; what changes is
// the clock (wall time, since real sockets do not advance a simulated
// calendar) and the exit condition (idle timeout or packet budget
// instead of a drained traffic source).
//
// Multicore serving is the paper's run-to-completion model made literal:
// core c owns its queue pairs, its pktbuf pools, its span tracker, its
// overload controller, its Click graph replica, and its own simulated
// machine — zero shared mutable state on the hot path. The goroutines
// meet only at an atomic stop flag, padded per-core progress counters
// the coordinator sums, and (when a metrics exporter is attached) a
// publish gate that briefly quiesces the cores for a snapshot.
package testbed

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"packetmill/internal/cache"
	"packetmill/internal/click"
	"packetmill/internal/dpdk"
	"packetmill/internal/machine"
	"packetmill/internal/memsim"
	"packetmill/internal/nic"
	"packetmill/internal/telemetry"
	"packetmill/internal/xchg"
)

// NewWireDUT assembles a single-core DUT whose PMD ports sit on the
// given live devices (internal/wire ports) instead of simulated
// adapters. Device i appears as Click PORT i.
func NewWireDUT(o Options, devs []nic.Port) (*DUT, error) {
	if len(devs) == 0 {
		return nil, fmt.Errorf("testbed: wire DUT needs at least one device")
	}
	return NewWireDUTPerCore(o, [][]nic.Port{devs})
}

// NewWireDUTPerCore assembles an N-core wire DUT: devsPerCore[c][i] is
// core c's own queue pair appearing as Click PORT i — typically queue c
// of a wire.Fanout, or a dedicated socketpair per core. Every core gets
// a private machine: the cores run as concurrent goroutines and the
// simulated memory hierarchy is a single-threaded model, and a
// run-to-completion pipeline shares nothing anyway.
func NewWireDUTPerCore(o Options, devsPerCore [][]nic.Port) (*DUT, error) {
	if len(devsPerCore) == 0 || len(devsPerCore[0]) == 0 {
		return nil, fmt.Errorf("testbed: wire DUT needs at least one core with at least one device")
	}
	o.Cores = len(devsPerCore)
	o.NICs = len(devsPerCore[0])
	o = o.withDefaults()
	memCfg := cache.DefaultSystemConfig()
	if o.DDIOWays > 0 {
		memCfg.DDIOWays = o.DDIOWays
	}
	d := &DUT{
		Opts:     o,
		Huge:     memsim.NewArena("hugepages", memsim.HugeBase, 1<<30),
		Static:   memsim.NewArena("static", memsim.StaticBase, 512<<20),
		Heap:     memsim.NewHeap(),
		mempools: map[*dpdk.Port]*dpdk.Mempool{},
		bindings: map[*dpdk.Port]xchg.Binding{},
	}
	for c, devs := range devsPerCore {
		if len(devs) != o.NICs {
			return nil, fmt.Errorf("testbed: core %d has %d devices, core 0 has %d", c, len(devs), o.NICs)
		}
		mach := machine.New(memCfg, machine.DefaultCostModel())
		d.Machs = append(d.Machs, mach)
		core := mach.AddCore(o.FreqGHz)
		d.Cores = append(d.Cores, core)
		d.PortsFor = append(d.PortsFor, map[int]*dpdk.Port{})
		// Tracing and the live exporter both need the span trackers; the
		// report itself still requires Telemetry.
		if o.Telemetry || o.Trace != nil || o.Metrics != nil {
			d.Trackers = append(d.Trackers, telemetry.NewTracker(core))
		} else {
			d.Trackers = append(d.Trackers, nil)
		}
		for i, dev := range devs {
			port, err := d.buildPortOn(i, dev)
			if err != nil {
				return nil, err
			}
			d.PortsFor[c][i] = port
		}
	}
	d.Mach = d.Machs[0]
	d.buildControllers()
	d.attachTrace()
	return d, nil
}

// WireServeStats summarizes a wire-serving session.
type WireServeStats struct {
	// Steps is the number of scheduling rounds executed (summed across
	// cores on a multicore session).
	Steps uint64
	// Packets counts packets moved across all rounds (RX and TX both
	// count, as in Engine.Step's contract).
	Packets uint64
}

// ServeWire drives the engines against wall-clock time until ctx is
// canceled, the engines have moved maxPackets packets (0 = no budget),
// or the datapath has been idle for idleExit (0 = no idle exit). On a
// normal exit it drains in-flight transmissions so a post-run Audit
// balances. One engine runs the classic inline loop; several run one
// goroutine per core, run to completion, with a coordinator watching
// the exit conditions.
func (d *DUT) ServeWire(ctx context.Context, engines []Engine,
	idleExit time.Duration, maxPackets uint64) (WireServeStats, error) {
	if len(engines) != len(d.Cores) {
		return WireServeStats{}, fmt.Errorf("testbed: %d engines for %d cores", len(engines), len(d.Cores))
	}
	d.wireEngines = engines
	if len(engines) > 1 {
		return d.serveWireMulti(ctx, engines, idleExit, maxPackets)
	}
	start := time.Now()
	lastWork := start
	// On the wire the flight recorder timestamps events with wall time
	// (the simulated calendar does not advance against real sockets).
	if d.Opts.Trace != nil {
		for _, ct := range d.Opts.Trace.Cores() {
			ct.SetClock(func() float64 { return float64(time.Since(start)) })
		}
	}
	lastPublish := start
	// Overload observation on the wire runs against the wall clock; the
	// cadence is the same dwell-derived fraction the simulated driver uses.
	var obsEveryNS float64
	var nextObsNS []float64
	var obsPolls, obsEmpty []uint64
	if len(d.Ctls) > 0 {
		obsEveryNS = d.Ctls[0].DwellNS() / 4
		if obsEveryNS <= 0 {
			obsEveryNS = 12.5e3
		}
		nextObsNS = make([]float64, len(engines))
		obsPolls = make([]uint64, len(engines))
		obsEmpty = make([]uint64, len(engines))
	}
	var st WireServeStats
	for {
		select {
		case <-ctx.Done():
			d.drainWire(engines, start)
			d.publishMetrics(engines, time.Since(start))
			return st, ctx.Err()
		default:
		}
		now := float64(time.Since(start))
		for i := range nextObsNS {
			if i < len(d.Ctls) && now >= nextObsNS[i] {
				nextObsNS[i] = now + obsEveryNS
				d.observeCore(engines[i], i, now, &obsPolls[i], &obsEmpty[i])
			}
		}
		moved := 0
		for i, e := range engines {
			moved += e.Step(d.Cores[i], now)
		}
		st.Steps++
		if d.Opts.Metrics != nil && time.Since(lastPublish) >= metricsInterval {
			lastPublish = time.Now()
			d.publishMetrics(engines, time.Since(start))
		}
		if moved > 0 {
			st.Packets += uint64(moved)
			lastWork = time.Now()
			if maxPackets > 0 && st.Packets >= maxPackets {
				break
			}
			continue
		}
		if idleExit > 0 && time.Since(lastWork) > idleExit {
			break
		}
		// An empty poll on a live wire should not spin a core flat out.
		runtime.Gosched()
	}
	d.drainWire(engines, start)
	// A final snapshot so a scrape after the session (the CI check does
	// this) sees the totals, not a half-second-old view.
	d.publishMetrics(engines, time.Since(start))
	return st, nil
}

// coreProgress is the slice of serving state one core shares with the
// coordinator, padded past a cache line so neighboring cores' counters
// never false-share.
type coreProgress struct {
	steps   atomic.Uint64
	packets atomic.Uint64
	// lastWork is the wall offset (ns since serve start) of the last
	// round that moved packets.
	lastWork atomic.Int64
	_        [104]byte
}

// serveWireMulti is the N-core serve loop: one run-to-completion
// goroutine per core, each stepping only its own engine, ports, tracker,
// and overload controller against its own machine. A coordinator sums
// the per-core progress counters every millisecond to enforce the packet
// budget and the idle exit (idleness means every core has been idle),
// and — when an exporter is attached — takes the publish gate's write
// side so snapshots read quiescent counters.
func (d *DUT) serveWireMulti(ctx context.Context, engines []Engine,
	idleExit time.Duration, maxPackets uint64) (WireServeStats, error) {
	start := time.Now()
	if d.Opts.Trace != nil {
		for _, ct := range d.Opts.Trace.Cores() {
			ct.SetClock(func() float64 { return float64(time.Since(start)) })
		}
	}
	var obsEveryNS float64
	if len(d.Ctls) > 0 {
		obsEveryNS = d.Ctls[0].DwellNS() / 4
		if obsEveryNS <= 0 {
			obsEveryNS = 12.5e3
		}
	}
	// The gate exists only for the exporter: every per-core counter,
	// histogram, and tracker is single-writer state owned by its core's
	// goroutine, so a mid-session snapshot must briefly quiesce the cores
	// (writer side) while they step under the read side. Without an
	// exporter the cores never touch it.
	var gate sync.RWMutex
	publish := d.Opts.Metrics != nil
	var stop atomic.Bool
	prog := make([]coreProgress, len(engines))
	var wg sync.WaitGroup
	for i := range engines {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			core, eng, p := d.Cores[ci], engines[ci], &prog[ci]
			var nextObsNS float64
			var obsPolls, obsEmpty uint64
			for !stop.Load() {
				if publish {
					gate.RLock()
				}
				now := float64(time.Since(start))
				if obsEveryNS > 0 && now >= nextObsNS {
					nextObsNS = now + obsEveryNS
					d.observeCore(eng, ci, now, &obsPolls, &obsEmpty)
				}
				moved := eng.Step(core, now)
				if publish {
					gate.RUnlock()
				}
				p.steps.Add(1)
				if moved > 0 {
					p.packets.Add(uint64(moved))
					p.lastWork.Store(int64(now))
				} else {
					runtime.Gosched()
				}
			}
		}(i)
	}

	sum := func() (pkts uint64, lastWork time.Duration) {
		for i := range prog {
			pkts += prog[i].packets.Load()
			if w := time.Duration(prog[i].lastWork.Load()); w > lastWork {
				lastWork = w
			}
		}
		return
	}
	var err error
	lastPublish := start
	tick := time.NewTicker(time.Millisecond)
watch:
	for {
		select {
		case <-ctx.Done():
			err = ctx.Err()
			break watch
		case <-tick.C:
		}
		pkts, lastWork := sum()
		if maxPackets > 0 && pkts >= maxPackets {
			break
		}
		if idleExit > 0 && time.Since(start)-lastWork > idleExit {
			break
		}
		if publish && time.Since(lastPublish) >= metricsInterval {
			lastPublish = time.Now()
			gate.Lock()
			d.publishMetrics(engines, time.Since(start))
			gate.Unlock()
		}
	}
	tick.Stop()
	stop.Store(true)
	wg.Wait()
	// Cores are joined: the drain and the final snapshot run
	// single-threaded over quiescent state, exactly like the 1-core path.
	d.drainWire(engines, start)
	d.publishMetrics(engines, time.Since(start))
	var st WireServeStats
	for i := range prog {
		st.Steps += prog[i].steps.Load()
		st.Packets += prog[i].packets.Load()
	}
	return st, err
}

// drainWire steps the engines and reaps TX rings until nothing moves and
// nothing is in flight (bounded by a wall-clock deadline), so buffers
// make it back to their pools before an Audit.
func (d *DUT) drainWire(engines []Engine, start time.Time) {
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		now := float64(time.Since(start))
		moved := 0
		for i, e := range engines {
			moved += e.Step(d.Cores[i], now)
		}
		inflight := 0
		for c, ports := range d.PortsFor {
			for _, port := range ports {
				// An empty TxBurst still reaps departed frames.
				port.TxBurst(d.Cores[c], now, nil)
				inflight += port.Dev.InflightCount()
			}
		}
		if moved == 0 && inflight == 0 {
			return
		}
		runtime.Gosched()
	}
}

// ServeWireGraph builds routers for g on a single-core wire DUT and
// serves: the one-call path cmd/packetmill's -io wire mode uses. The DUT
// is returned so callers can audit buffers and read telemetry after the
// session.
func ServeWireGraph(ctx context.Context, g *click.Graph, o Options,
	devs []nic.Port, idleExit time.Duration, maxPackets uint64) (*DUT, WireServeStats, error) {
	if len(devs) == 0 {
		return nil, WireServeStats{}, fmt.Errorf("testbed: wire DUT needs at least one device")
	}
	return ServeWireGraphPerCore(ctx, g, o, [][]nic.Port{devs}, idleExit, maxPackets)
}

// ServeWireGraphPerCore is ServeWireGraph for N run-to-completion cores:
// one router replica per core, each driving that core's own devices
// (devsPerCore[c][i] is core c's Click PORT i).
func ServeWireGraphPerCore(ctx context.Context, g *click.Graph, o Options,
	devsPerCore [][]nic.Port, idleExit time.Duration, maxPackets uint64) (*DUT, WireServeStats, error) {
	d, err := NewWireDUTPerCore(o, devsPerCore)
	if err != nil {
		return nil, WireServeStats{}, err
	}
	routers, err := d.BuildRouters(g)
	if err != nil {
		return nil, WireServeStats{}, err
	}
	engines := make([]Engine, len(routers))
	for i, rt := range routers {
		engines[i] = &clickEngine{rt: rt, core: d.Cores[i]}
	}
	st, err := d.ServeWire(ctx, engines, idleExit, maxPackets)
	return d, st, err
}
