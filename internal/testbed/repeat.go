// Repeated runs and loss-free rate search — the measurement-methodology
// half of the harness. The paper repeats each test five times and reports
// medians (via NPF, which also randomizes the environment between runs to
// dodge measurement bias, §5); RunRepeated mirrors that by re-running with
// varied seeds — which perturbs traffic interleavings and flow layouts —
// and reporting the median-throughput run. FindLossFreeRate is the
// RFC 2544-style binary search for the maximum loss-free forwarding rate.
package testbed

import (
	"fmt"
	"sort"

	"packetmill/internal/click"
)

// Spread summarizes run-to-run variation.
type Spread struct {
	MinGbps, MaxGbps float64
	// Gbps holds each run's throughput, sorted ascending.
	Gbps []float64
}

// RunRepeated re-runs config n times with varied seeds and returns the
// median-throughput run's full Result plus the spread.
func RunRepeated(config string, o Options, n int) (*Result, Spread, error) {
	g, err := click.Parse(config)
	if err != nil {
		return nil, Spread{}, err
	}
	return RunRepeatedGraph(g, o, n)
}

// RunRepeatedGraph is RunRepeated for a parsed (possibly transformed)
// graph.
func RunRepeatedGraph(g *click.Graph, o Options, n int) (*Result, Spread, error) {
	if n < 1 {
		n = 1
	}
	o = o.withDefaults()
	type run struct {
		res  *Result
		gbps float64
	}
	runs := make([]run, 0, n)
	for i := 0; i < n; i++ {
		oi := o
		oi.Seed = o.Seed + uint64(i)*0x9e37
		res, err := RunGraph(g, oi)
		if err != nil {
			return nil, Spread{}, fmt.Errorf("testbed: repeat %d: %w", i, err)
		}
		runs = append(runs, run{res: res, gbps: res.Gbps()})
	}
	sort.Slice(runs, func(i, j int) bool { return runs[i].gbps < runs[j].gbps })
	sp := Spread{MinGbps: runs[0].gbps, MaxGbps: runs[len(runs)-1].gbps}
	for _, r := range runs {
		sp.Gbps = append(sp.Gbps, r.gbps)
	}
	return runs[len(runs)/2].res, sp, nil
}

// FindLossFreeRate binary-searches the maximum offered rate (Gbps) the
// configuration forwards with a loss ratio at or below tolerance —
// RFC 2544's throughput definition. It returns the rate and the Result of
// the final passing run.
func FindLossFreeRate(config string, o Options, tolerance float64) (float64, *Result, error) {
	g, err := click.Parse(config)
	if err != nil {
		return 0, nil, err
	}
	o = o.withDefaults()
	lossAt := func(rate float64) (*Result, float64, error) {
		oi := o
		oi.RateGbps = rate
		res, err := RunGraph(g, oi)
		if err != nil {
			return nil, 0, err
		}
		if res.Offered == 0 {
			return res, 1, nil
		}
		return res, float64(res.Dropped) / float64(res.Offered), nil
	}

	lo, hi := 1.0, o.RateGbps // upper bound: the configured line rate
	var best *Result
	bestRate := 0.0
	// A dozen halvings give <0.1-Gbps resolution on a 100-Gbps span.
	for i := 0; i < 12; i++ {
		mid := (lo + hi) / 2
		res, loss, err := lossAt(mid)
		if err != nil {
			return 0, nil, err
		}
		if loss <= tolerance {
			best, bestRate = res, mid
			lo = mid
		} else {
			hi = mid
		}
	}
	if best == nil {
		res, loss, err := lossAt(lo)
		if err != nil {
			return 0, nil, err
		}
		if loss > tolerance {
			return 0, nil, fmt.Errorf("testbed: no loss-free rate ≥ %.1f Gbps found", lo)
		}
		best, bestRate = res, lo
	}
	return bestRate, best, nil
}
