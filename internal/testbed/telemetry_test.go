package testbed

import (
	"encoding/json"
	"math"
	"testing"

	"packetmill/internal/click"
	_ "packetmill/internal/elements"
	"packetmill/internal/nf"
	"packetmill/internal/trafficgen"
)

// TestTelemetryAttributionSumsToCoreTotals is the tentpole invariant: the
// per-span cycle attribution must partition each core's busy cycles, so
// coverage lands within 1% of 1.0 (it is exact by construction — every
// charge happens under the driver span or a nested stage span).
func TestTelemetryAttributionSumsToCoreTotals(t *testing.T) {
	for _, m := range []click.MetadataModel{click.Copying, click.XChange} {
		res := run(t, nf.Router(32), Options{
			FreqGHz: 2.3, Model: m, FixedSize: 512, RateGbps: 20,
			Telemetry: true,
		})
		rep := res.Telemetry
		if rep == nil {
			t.Fatalf("%v: no telemetry report", m)
		}
		if math.Abs(rep.Attribution.Coverage-1) > 0.01 {
			t.Fatalf("%v: coverage %.4f (attributed %.0f of %.0f cycles), want within 1%%",
				m, rep.Attribution.Coverage,
				rep.Attribution.AttributedCycles, rep.Attribution.CoreBusyCycles)
		}
		for _, cr := range rep.Cores {
			if math.Abs(cr.Coverage-1) > 0.01 {
				t.Fatalf("%v core %d: coverage %.4f", m, cr.Core, cr.Coverage)
			}
		}
	}
}

// TestTelemetryReportSections checks the report carries every advertised
// section with internally consistent numbers.
func TestTelemetryReportSections(t *testing.T) {
	const cores = 2
	res := run(t, nf.Router(32), Options{
		FreqGHz: 2.3, Cores: cores, Model: click.Copying,
		FixedSize: 512, RateGbps: 40, Packets: 6000,
		Telemetry: true,
	})
	rep := res.Telemetry
	if rep == nil {
		t.Fatal("no telemetry report")
	}
	if rep.Schema == "" {
		t.Fatal("schema missing")
	}
	if len(rep.Cores) != cores {
		t.Fatalf("%d core reports, want %d", len(rep.Cores), cores)
	}
	if len(rep.Queues) != cores {
		t.Fatalf("%d queue reports, want %d (1 NIC x %d queues)", len(rep.Queues), cores, cores)
	}
	// Per-queue RX deliveries must sum to the NIC-global delivered count,
	// and the stage/element tables must cover the datapath.
	var qDelivered uint64
	for _, q := range rep.Queues {
		qDelivered += q.RxDelivered
		if q.Polls == 0 {
			t.Fatalf("queue %d/%s never polled", q.Queue, q.NIC)
		}
	}
	if qDelivered == 0 {
		t.Fatal("queues delivered nothing")
	}
	if len(rep.Stages) < 4 {
		t.Fatalf("only %d stages attributed: %+v", len(rep.Stages), rep.Stages)
	}
	seen := map[string]bool{}
	for _, s := range rep.Stages {
		seen[s.Stage] = true
	}
	for _, want := range []string{"driver", "pmd-rx", "conversion", "engine", "pmd-tx"} {
		if !seen[want] {
			t.Fatalf("stage %q missing from report (have %v)", want, seen)
		}
	}
	// Graph elements must appear in the element table with cycles.
	elems := map[string]bool{}
	for _, e := range rep.Elements {
		elems[e.Name] = true
		if e.Cycles <= 0 {
			t.Fatalf("element %s attributed no cycles", e.Name)
		}
	}
	if len(elems) < 3 {
		t.Fatalf("only %d elements attributed: %v", len(elems), elems)
	}
	if len(rep.Intervals) == 0 {
		t.Fatal("no interval snapshots")
	}
	last := rep.Intervals[len(rep.Intervals)-1]
	if last.Offered == 0 || last.TxWire == 0 {
		t.Fatalf("final interval shows no progress: %+v", last)
	}
	// The report must round-trip through JSON.
	raw, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back map[string]any
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"cores", "queues", "stages", "elements", "attribution"} {
		if _, ok := back[key]; !ok {
			t.Fatalf("JSON missing %q section", key)
		}
	}
}

// TestTelemetryVLANQueueSpread is the end-to-end RSS acceptance check: a
// 4-core DUT offered VLAN-tagged traffic must see every queue within 2x
// its fair share of deliveries. Before the rssHash fix, all tagged frames
// collapsed onto queue 0.
func TestTelemetryVLANQueueSpread(t *testing.T) {
	const cores = 4
	res := run(t, nf.Forwarder(0, 32), Options{
		FreqGHz: 2.3, Cores: cores, Model: click.Copying,
		RateGbps: 40, Packets: 8000, Telemetry: true,
		Traffic: func(nicID int, cfg trafficgen.Config) trafficgen.Source {
			cfg.Flows = 256
			cfg.TCPShare, cfg.UDPShare, cfg.ICMPShare = 0.55, 0.35, 0.05
			cfg.VLANID = 100
			return trafficgen.NewFixedSize(cfg, 256)
		},
	})
	rep := res.Telemetry
	if rep == nil {
		t.Fatal("no telemetry report")
	}
	var total uint64
	for _, q := range rep.Queues {
		total += q.RxDelivered
	}
	fair := float64(total) / cores
	for _, q := range rep.Queues {
		if float64(q.RxDelivered) > 2*fair {
			t.Fatalf("queue %d got %d of %d deliveries (>2x fair share %.0f)",
				q.Queue, q.RxDelivered, total, fair)
		}
		if q.RxDelivered == 0 {
			t.Fatalf("queue %d starved; VLAN traffic collapsed onto one queue", q.Queue)
		}
	}
}

// TestTelemetryOffByDefault ensures a plain run carries no report and the
// trackers stay nil (the zero-cost path).
func TestTelemetryOffByDefault(t *testing.T) {
	res := run(t, nf.Forwarder(0, 32), Options{
		FreqGHz: 2.3, Model: click.Copying, FixedSize: 512, RateGbps: 10,
	})
	if res.Telemetry != nil {
		t.Fatal("telemetry report on an untelemetered run")
	}
}
