package lpm

import (
	"testing"
	"testing/quick"

	"packetmill/internal/machine"
	"packetmill/internal/memsim"
	"packetmill/internal/netpkt"
)

func newTable() *Table {
	return New(memsim.NewArena("lpm", memsim.HeapBase, 1<<28))
}

func ip(s string) uint32 {
	v, err := netpkt.ParseIPv4(s)
	if err != nil {
		panic(err)
	}
	return v.Uint32()
}

func TestDefaultRouteMatchesEverything(t *testing.T) {
	tb := newTable()
	if err := tb.AddRoute(0, 0, NextHop{Port: 9}); err != nil {
		t.Fatal(err)
	}
	for _, a := range []string{"0.0.0.0", "8.8.8.8", "255.255.255.255"} {
		nh, ok := tb.LookupNoCharge(ip(a))
		if !ok || nh.Port != 9 {
			t.Fatalf("lookup %s: %+v ok=%v", a, nh, ok)
		}
	}
}

func TestLongestPrefixWins(t *testing.T) {
	tb := newTable()
	tb.AddRoute(ip("10.0.0.0"), 8, NextHop{Port: 1})
	tb.AddRoute(ip("10.1.0.0"), 16, NextHop{Port: 2})
	tb.AddRoute(ip("10.1.2.0"), 24, NextHop{Port: 3})
	cases := []struct {
		addr string
		port int
	}{
		{"10.9.9.9", 1},
		{"10.1.9.9", 2},
		{"10.1.2.9", 3},
	}
	for _, c := range cases {
		nh, ok := tb.LookupNoCharge(ip(c.addr))
		if !ok || nh.Port != c.port {
			t.Errorf("%s -> port %d (ok=%v), want %d", c.addr, nh.Port, ok, c.port)
		}
	}
}

func TestInsertionOrderIrrelevant(t *testing.T) {
	a, b := newTable(), newTable()
	a.AddRoute(ip("10.0.0.0"), 8, NextHop{Port: 1})
	a.AddRoute(ip("10.1.0.0"), 16, NextHop{Port: 2})
	b.AddRoute(ip("10.1.0.0"), 16, NextHop{Port: 2})
	b.AddRoute(ip("10.0.0.0"), 8, NextHop{Port: 1})
	for _, addr := range []string{"10.0.0.1", "10.1.0.1", "10.255.0.1"} {
		na, _ := a.LookupNoCharge(ip(addr))
		nb, _ := b.LookupNoCharge(ip(addr))
		if na.Port != nb.Port {
			t.Fatalf("order-dependent result for %s: %d vs %d", addr, na.Port, nb.Port)
		}
	}
}

func TestLongPrefixesUseTbl8(t *testing.T) {
	tb := newTable()
	tb.AddRoute(ip("192.168.1.0"), 24, NextHop{Port: 1})
	tb.AddRoute(ip("192.168.1.128"), 25, NextHop{Port: 2})
	tb.AddRoute(ip("192.168.1.42"), 32, NextHop{Port: 3})
	cases := []struct {
		addr string
		port int
	}{
		{"192.168.1.1", 1},
		{"192.168.1.200", 2},
		{"192.168.1.42", 3},
	}
	for _, c := range cases {
		nh, ok := tb.LookupNoCharge(ip(c.addr))
		if !ok || nh.Port != c.port {
			t.Errorf("%s -> %d (ok=%v), want %d", c.addr, nh.Port, ok, c.port)
		}
	}
}

func TestHostRouteBeforeCoveringPrefix(t *testing.T) {
	tb := newTable()
	tb.AddRoute(ip("192.168.1.42"), 32, NextHop{Port: 3})
	tb.AddRoute(ip("192.168.1.0"), 24, NextHop{Port: 1})
	nh, _ := tb.LookupNoCharge(ip("192.168.1.42"))
	if nh.Port != 3 {
		t.Fatalf("host route lost: port %d", nh.Port)
	}
	nh, _ = tb.LookupNoCharge(ip("192.168.1.43"))
	if nh.Port != 1 {
		t.Fatalf("covering /24 broken: port %d", nh.Port)
	}
}

func TestNoMatch(t *testing.T) {
	tb := newTable()
	tb.AddRoute(ip("10.0.0.0"), 8, NextHop{Port: 1})
	if _, ok := tb.LookupNoCharge(ip("11.0.0.1")); ok {
		t.Fatal("matched a route that does not cover the address")
	}
}

func TestBadPrefixLength(t *testing.T) {
	tb := newTable()
	if err := tb.AddRoute(0, 33, NextHop{}); err == nil {
		t.Fatal("accepted /33")
	}
	if err := tb.AddRoute(0, -1, NextHop{}); err == nil {
		t.Fatal("accepted /-1")
	}
}

func TestRoutesCounter(t *testing.T) {
	tb := newTable()
	tb.AddRoute(ip("10.0.0.0"), 8, NextHop{Port: 1})
	tb.AddRoute(ip("10.1.0.0"), 16, NextHop{Port: 2})
	if tb.Routes() != 2 {
		t.Fatalf("routes = %d", tb.Routes())
	}
}

func TestChargedLookupMatchesUncharged(t *testing.T) {
	_, core := machine.Default(2.0)
	tb := newTable()
	tb.AddRoute(ip("10.0.0.0"), 8, NextHop{Port: 1})
	tb.AddRoute(ip("10.1.2.200"), 26, NextHop{Port: 5})
	for _, a := range []string{"10.0.0.1", "10.1.2.201", "10.1.2.1"} {
		c1, ok1 := tb.Lookup(core, ip(a))
		c2, ok2 := tb.LookupNoCharge(ip(a))
		if c1 != c2 || ok1 != ok2 {
			t.Fatalf("charged/uncharged disagree on %s", a)
		}
	}
}

func TestChargedLookupCosts(t *testing.T) {
	_, core := machine.Default(2.0)
	tb := newTable()
	tb.AddRoute(ip("10.0.0.0"), 8, NextHop{Port: 1})
	before := core.Snapshot()
	tb.Lookup(core, ip("10.0.0.1"))
	if d := core.Snapshot().Delta(before); d.Instructions == 0 {
		t.Fatal("lookup was free")
	}
}

func TestAgainstLinearScanProperty(t *testing.T) {
	// Reference model: linear scan over the route list picking the
	// longest matching prefix (earliest-added wins ties at same length
	// by our overwrite rule: later same-depth overwrites — emulate that).
	type route struct {
		prefix uint32
		length int
		port   int
	}
	routes := []route{
		{ip("0.0.0.0"), 0, 0},
		{ip("10.0.0.0"), 8, 1},
		{ip("10.128.0.0"), 9, 2},
		{ip("10.1.0.0"), 16, 3},
		{ip("10.1.2.0"), 24, 4},
		{ip("10.1.2.128"), 25, 5},
		{ip("10.1.2.129"), 32, 6},
		{ip("172.16.0.0"), 12, 7},
	}
	tb := newTable()
	for _, r := range routes {
		if err := tb.AddRoute(r.prefix, r.length, NextHop{Port: r.port}); err != nil {
			t.Fatal(err)
		}
	}
	ref := func(addr uint32) (int, bool) {
		best, bestLen, found := 0, -1, false
		for _, r := range routes {
			if addr&maskOf(r.length) == r.prefix&maskOf(r.length) && r.length >= bestLen {
				best, bestLen, found = r.port, r.length, true
			}
		}
		return best, found
	}
	if err := quick.Check(func(addr uint32) bool {
		nh, ok := tb.LookupNoCharge(addr)
		wantPort, wantOK := ref(addr)
		if ok != wantOK {
			return false
		}
		return !ok || nh.Port == wantPort
	}, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}
