// Package lpm implements longest-prefix-match IPv4 route lookup with a
// DIR-24-8 table (the classic two-level scheme DPDK's rte_lpm uses): one
// 2^24-entry first level indexed by the top 24 address bits, and overflow
// groups of 256 entries for prefixes longer than /24. Lookups are one
// memory access for the common case and two for long prefixes, which is
// also what we charge in the simulator via the table's simulated address.
package lpm

import (
	"fmt"

	"packetmill/internal/machine"
	"packetmill/internal/memsim"
)

// entry encoding: bit 15 = valid, bit 14 = indirect (points into tbl8),
// low 14 bits = next-hop index or tbl8 group number.
const (
	flagValid    = 1 << 15
	flagIndirect = 1 << 14
	valueMask    = 0x3fff
)

// Table is a DIR-24-8 LPM table. Create with New; not safe for concurrent
// mutation (the router installs routes at configuration time).
type Table struct {
	tbl24 []uint16 // 2^24 entries
	tbl8  []uint16 // groups of 256
	// depth24 tracks the prefix length that wrote each tbl24 slot so a
	// shorter prefix never overwrites a longer one.
	depth24 []uint8
	depth8  []uint8
	// nextHops registry.
	nextHops []NextHop
	// base is the table's simulated address; lookups charge reads here.
	base   memsim.Addr
	routes int
}

// NextHop is the routing decision payload.
type NextHop struct {
	Port    int
	Gateway uint32 // next-hop IP (0 = directly connected)
}

// New allocates the table's first level in the given arena (the second
// level grows on demand). The 64-MiB tbl24 region is charged at lookup
// time like the real rte_lpm.
func New(arena *memsim.Arena) *Table {
	return &Table{
		tbl24:   make([]uint16, 1<<24),
		depth24: make([]uint8, 1<<24),
		base:    arena.Alloc((1<<24)*2, memsim.PageSize),
	}
}

// AddRoute installs prefix/length -> nh. Routes may be added in any order;
// longer prefixes always win.
func (t *Table) AddRoute(prefix uint32, length int, nh NextHop) error {
	if length < 0 || length > 32 {
		return fmt.Errorf("lpm: bad prefix length %d", length)
	}
	if len(t.nextHops) >= valueMask {
		return fmt.Errorf("lpm: next-hop table full")
	}
	nhIdx := uint16(len(t.nextHops))
	t.nextHops = append(t.nextHops, nh)
	prefix &= maskOf(length)

	if length <= 24 {
		start := prefix >> 8
		count := uint32(1) << (24 - length)
		for i := start; i < start+count; i++ {
			e := t.tbl24[i]
			if e&flagValid != 0 && e&flagIndirect != 0 {
				// Push into the existing tbl8 group where depth allows.
				grp := uint32(e & valueMask)
				for j := uint32(0); j < 256; j++ {
					k := grp*256 + j
					if t.depth8[k] <= uint8(length) {
						t.tbl8[k] = flagValid | nhIdx
						t.depth8[k] = uint8(length)
					}
				}
				continue
			}
			if t.depth24[i] <= uint8(length) {
				t.tbl24[i] = flagValid | nhIdx
				t.depth24[i] = uint8(length)
			}
		}
		t.routes++
		return nil
	}

	// /25../32: need a tbl8 group under one tbl24 slot.
	slot := prefix >> 8
	e := t.tbl24[slot]
	var grp uint32
	if e&flagValid != 0 && e&flagIndirect != 0 {
		grp = uint32(e & valueMask)
	} else {
		// Allocate a fresh group, seeding it with the current /<=24
		// decision so shorter prefixes keep matching.
		grp = uint32(len(t.tbl8) / 256)
		if grp > valueMask {
			return fmt.Errorf("lpm: tbl8 space exhausted")
		}
		seed, seedDepth := uint16(0), uint8(0)
		if e&flagValid != 0 {
			seed, seedDepth = e, t.depth24[slot]
		}
		for j := 0; j < 256; j++ {
			t.tbl8 = append(t.tbl8, seed)
			t.depth8 = append(t.depth8, seedDepth)
		}
		t.tbl24[slot] = flagValid | flagIndirect | uint16(grp)
		// depth24 keeps the depth of the *shorter* route that seeded
		// the group; the slot itself is now structural.
	}
	start := prefix & 0xff
	count := uint32(1) << (32 - length)
	for j := start; j < start+count; j++ {
		k := grp*256 + j
		if t.depth8[k] <= uint8(length) {
			t.tbl8[k] = flagValid | nhIdx
			t.depth8[k] = uint8(length)
		}
	}
	t.routes++
	return nil
}

func maskOf(length int) uint32 {
	if length == 0 {
		return 0
	}
	return ^uint32(0) << (32 - length)
}

// Routes returns the number of installed routes.
func (t *Table) Routes() int { return t.routes }

// Lookup resolves addr, charging the table reads to core (one 2-byte read
// in tbl24, plus one in tbl8 for long prefixes). ok is false when no route
// matches.
func (t *Table) Lookup(core *machine.Core, addr uint32) (NextHop, bool) {
	i := addr >> 8
	core.Load(t.base+memsim.Addr(i*2), 2)
	e := t.tbl24[i]
	if e&flagValid == 0 {
		return NextHop{}, false
	}
	if e&flagIndirect != 0 {
		grp := uint32(e & valueMask)
		k := grp*256 + addr&0xff
		// tbl8 lives after tbl24 in our simulated address space.
		core.Load(t.base+memsim.Addr((1<<24)*2+k*2), 2)
		e = t.tbl8[k]
		if e&flagValid == 0 {
			return NextHop{}, false
		}
	}
	return t.nextHops[e&valueMask], true
}

// LookupNoCharge resolves addr without touching the simulator — for tests
// and control-plane use.
func (t *Table) LookupNoCharge(addr uint32) (NextHop, bool) {
	i := addr >> 8
	e := t.tbl24[i]
	if e&flagValid == 0 {
		return NextHop{}, false
	}
	if e&flagIndirect != 0 {
		e = t.tbl8[uint32(e&valueMask)*256+addr&0xff]
		if e&flagValid == 0 {
			return NextHop{}, false
		}
	}
	return t.nextHops[e&valueMask], true
}
