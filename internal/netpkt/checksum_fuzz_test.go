package netpkt

import (
	"encoding/binary"
	"testing"
)

// referenceChecksum is an independent RFC 1071 implementation: sum into
// 64 bits, fold once at the end. Any divergence from Checksum's
// fold-as-you-go form is a bug in one of them.
func referenceChecksum(b []byte, initial uint32) uint16 {
	var sum uint64 = uint64(initial)
	for i := 0; i+1 < len(b); i += 2 {
		sum += uint64(b[i])<<8 | uint64(b[i+1])
	}
	if len(b)%2 == 1 {
		sum += uint64(b[len(b)-1]) << 8
	}
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}

// FuzzChecksum cross-checks Checksum against the independent reference
// on arbitrary payloads, and pins the RFC 1071 algebraic properties the
// rewriters rely on.
func FuzzChecksum(f *testing.F) {
	f.Add([]byte{}, uint32(0))
	f.Add([]byte{0x00}, uint32(0))
	f.Add([]byte{0xff, 0xff}, uint32(0))
	f.Add([]byte{0x00, 0x00, 0xff, 0xff}, uint32(0xffff))
	f.Add([]byte{0x45, 0x00, 0x00, 0x54, 0x00, 0x00, 0x40, 0x00, 0x40, 0x01}, uint32(0))
	f.Fuzz(func(t *testing.T, b []byte, initial uint32) {
		// Pre-fold oversized initial sums: callers pass partial sums that
		// are themselves bounded, and the reference folds differently at
		// the 2^32 boundary otherwise.
		initial = initial&0xffff + initial>>16
		got := Checksum(b, initial)
		want := referenceChecksum(b, initial)
		if got != want {
			t.Fatalf("Checksum(%x, %#x) = %#04x, reference %#04x", b, initial, got, want)
		}
		// Verification property: a message with its own checksum summed
		// in verifies to zero (the receiver's check).
		if len(b)%2 == 0 {
			full := Checksum(b, initial)
			if v := Checksum(b, initial+uint32(full)); v != 0 {
				t.Fatalf("checksum-of-checksummed = %#04x, want 0", v)
			}
		}
	})
}

// canonical maps the +0 checksum representation to the transmitted -0
// form (RFC 1624 §4: a computed zero goes on the wire as 0xffff).
func canonical(c uint16) uint16 {
	if c == 0 {
		return 0xffff
	}
	return c
}

// FuzzIncrementalChecksumUpdate16 is the RFC 1624 equivalence gate: for
// any packet and any single 16-bit field rewrite, patching the checksum
// incrementally must verify exactly like recomputing it from scratch —
// including the 0x0000/0xffff folding edge that RFC 1624 exists to fix
// (eqn. 3 never produces the non-canonical -0 form from a valid sum).
func FuzzIncrementalChecksumUpdate16(f *testing.F) {
	f.Add([]byte{0x45, 0x00, 0x00, 0x54, 0x00, 0x00, 0x40, 0x00}, 0, uint16(0x0000))
	f.Add([]byte{0x45, 0x00, 0x00, 0x54, 0x00, 0x00, 0x40, 0x00}, 2, uint16(0xffff))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff}, 0, uint16(0x0000))
	f.Add([]byte{0x00, 0x00, 0x00, 0x00}, 2, uint16(0xffff))
	f.Add([]byte{0x12, 0x34, 0x56, 0x78, 0x9a, 0xbc}, 4, uint16(0x9abc))
	f.Fuzz(func(t *testing.T, b []byte, fieldIdx int, newVal uint16) {
		if len(b) < 2 || len(b)%2 != 0 {
			return
		}
		nFields := len(b) / 2
		fieldIdx = ((fieldIdx % nFields) + nFields) % nFields
		off := fieldIdx * 2

		check := Checksum(b, 0)
		old := binary.BigEndian.Uint16(b[off:])

		patched := IncrementalChecksumUpdate16(check, old, newVal)

		mod := make([]byte, len(b))
		copy(mod, b)
		binary.BigEndian.PutUint16(mod[off:], newVal)
		full := Checksum(mod, 0)

		// RFC 1624 §3: incremental update and full recomputation may
		// disagree only in the representation of zero (0x0000 vs
		// 0xffff, +0 vs -0 in ones' complement). Verification goes
		// through the canonical form — RFC 1624 §4's rule that a zero
		// checksum is transmitted as 0xffff, which every IP stack
		// applies — because the +0 form cannot verify over an all-zero
		// message.
		if v := Checksum(mod, uint32(canonical(patched))); v != 0 {
			t.Fatalf("patched checksum %#04x does not verify (full %#04x, old %#04x, new %#04x)",
				patched, full, old, newVal)
		}
		// And outside the zero representation edge they must be equal.
		if patched != full && !(patched == 0xffff && full == 0x0000 || patched == 0x0000 && full == 0xffff) {
			t.Fatalf("incremental %#04x != full %#04x beyond the ±0 edge", patched, full)
		}
		// Round trip: undoing the change restores a verifying checksum.
		back := IncrementalChecksumUpdate16(patched, newVal, old)
		if v := Checksum(b, uint32(canonical(back))); v != 0 {
			t.Fatalf("reverted checksum %#04x does not verify", back)
		}
	})
}

// TestIncrementalChecksumZeroEdges pins the folding edge cases by hand:
// transitions through 0x0000 and 0xffff fields, the classic RFC 1624
// failure of the RFC 1141 shortcut.
func TestIncrementalChecksumZeroEdges(t *testing.T) {
	cases := []struct {
		b   []byte
		off int
		new uint16
	}{
		{[]byte{0x00, 0x00, 0x00, 0x00}, 0, 0xffff},
		{[]byte{0xff, 0xff, 0xff, 0xff}, 0, 0x0000},
		{[]byte{0x12, 0x34, 0xed, 0xcb}, 2, 0x0000}, // sum is 0xffff before
		{[]byte{0x00, 0x00, 0xff, 0xff}, 2, 0x0001},
	}
	for i, c := range cases {
		check := Checksum(c.b, 0)
		old := binary.BigEndian.Uint16(c.b[c.off:])
		patched := IncrementalChecksumUpdate16(check, old, c.new)
		mod := make([]byte, len(c.b))
		copy(mod, c.b)
		binary.BigEndian.PutUint16(mod[c.off:], c.new)
		if v := Checksum(mod, uint32(canonical(patched))); v != 0 {
			t.Errorf("case %d: patched %#04x does not verify", i, patched)
		}
	}
}
