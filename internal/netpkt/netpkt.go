// Package netpkt builds and parses the on-wire packet formats the network
// functions operate on: Ethernet (with 802.1Q VLAN), ARP, IPv4 (including
// header checksums), UDP, TCP, and ICMP. The elements in
// internal/elements perform their real protocol work — checksum
// verification, TTL decrement with incremental checksum update, header
// validation — on bytes produced here, so correctness is testable against
// the RFC arithmetic rather than being assumed.
package netpkt

import (
	"encoding/binary"
	"fmt"
)

// MAC is a 48-bit Ethernet address.
type MAC [6]byte

// ParseMAC parses the usual colon form ("aa:bb:cc:dd:ee:ff").
func ParseMAC(s string) (MAC, error) {
	var m MAC
	n, err := fmt.Sscanf(s, "%02x:%02x:%02x:%02x:%02x:%02x",
		&m[0], &m[1], &m[2], &m[3], &m[4], &m[5])
	if err != nil || n != 6 {
		return MAC{}, fmt.Errorf("netpkt: bad MAC %q", s)
	}
	return m, nil
}

func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// IsBroadcast reports whether the address is ff:ff:ff:ff:ff:ff.
func (m MAC) IsBroadcast() bool {
	return m == MAC{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}
}

// IsMulticast reports whether the group bit is set.
func (m MAC) IsMulticast() bool { return m[0]&1 == 1 }

// IPv4 is an IPv4 address in host-friendly array form.
type IPv4 [4]byte

// ParseIPv4 parses dotted-quad notation.
func ParseIPv4(s string) (IPv4, error) {
	var ip IPv4
	var a, b, c, d int
	n, err := fmt.Sscanf(s, "%d.%d.%d.%d", &a, &b, &c, &d)
	if err != nil || n != 4 || a|b|c|d < 0 || a > 255 || b > 255 || c > 255 || d > 255 {
		return IPv4{}, fmt.Errorf("netpkt: bad IPv4 %q", s)
	}
	ip[0], ip[1], ip[2], ip[3] = byte(a), byte(b), byte(c), byte(d)
	return ip, nil
}

func (ip IPv4) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", ip[0], ip[1], ip[2], ip[3])
}

// Uint32 returns the address as a big-endian integer (for LPM lookups).
func (ip IPv4) Uint32() uint32 { return binary.BigEndian.Uint32(ip[:]) }

// IPv4FromUint32 converts back from integer form.
func IPv4FromUint32(v uint32) IPv4 {
	var ip IPv4
	binary.BigEndian.PutUint32(ip[:], v)
	return ip
}

// EtherTypes and IP protocol numbers used throughout.
const (
	EtherTypeIPv4 = 0x0800
	EtherTypeARP  = 0x0806
	EtherTypeVLAN = 0x8100
	EtherTypeQinQ = 0x88a8 // 802.1ad service tag (outer tag of Q-in-Q)

	ProtoICMP = 1
	ProtoTCP  = 6
	ProtoUDP  = 17
)

// Header sizes.
const (
	EtherHdrLen = 14
	VLANTagLen  = 4
	IPv4HdrLen  = 20 // without options
	UDPHdrLen   = 8
	TCPHdrLen   = 20 // without options
	ICMPHdrLen  = 8
	ARPLen      = 28
)

// Checksum computes the Internet checksum (RFC 1071) over b with an
// initial partial sum.
func Checksum(b []byte, initial uint32) uint16 {
	sum := initial
	for len(b) >= 2 {
		sum += uint32(binary.BigEndian.Uint16(b))
		b = b[2:]
	}
	if len(b) == 1 {
		sum += uint32(b[0]) << 8
	}
	for sum>>16 != 0 {
		sum = (sum & 0xffff) + sum>>16
	}
	return ^uint16(sum)
}

// IncrementalChecksumUpdate16 applies RFC 1624 incremental update to an
// existing checksum when a 16-bit field changes from old to new.
func IncrementalChecksumUpdate16(check, old, new uint16) uint16 {
	// HC' = ~(~HC + ~m + m') (RFC 1624 eqn. 3)
	sum := uint32(^check) + uint32(^old) + uint32(new)
	for sum>>16 != 0 {
		sum = (sum & 0xffff) + sum>>16
	}
	return ^uint16(sum)
}

// --- Ethernet ---

// EtherHeader is a decoded Ethernet header.
type EtherHeader struct {
	Dst, Src  MAC
	EtherType uint16
}

// PutEther writes an Ethernet header at b[0:14].
func PutEther(b []byte, h EtherHeader) {
	copy(b[0:6], h.Dst[:])
	copy(b[6:12], h.Src[:])
	binary.BigEndian.PutUint16(b[12:14], h.EtherType)
}

// ParseEther decodes the Ethernet header at the front of b.
func ParseEther(b []byte) (EtherHeader, error) {
	if len(b) < EtherHdrLen {
		return EtherHeader{}, fmt.Errorf("netpkt: short ethernet frame (%d bytes)", len(b))
	}
	var h EtherHeader
	copy(h.Dst[:], b[0:6])
	copy(h.Src[:], b[6:12])
	h.EtherType = binary.BigEndian.Uint16(b[12:14])
	return h, nil
}

// SwapEtherAddrs exchanges the source and destination MACs in place — the
// core of the EtherMirror element.
func SwapEtherAddrs(b []byte) {
	for i := 0; i < 6; i++ {
		b[i], b[6+i] = b[6+i], b[i]
	}
}

// --- 802.1Q VLAN ---

// VLANTag is the 4-byte 802.1Q shim: TPID is implicit (0x8100).
type VLANTag struct {
	PCP uint8  // priority
	VID uint16 // VLAN ID (12 bits)
}

// InsertVLAN splices a VLAN tag in after the MAC addresses using packet
// headroom: the frame must sit at buf[off:] with off ≥ VLANTagLen spare
// bytes in front of it. The MACs shift 4 bytes toward the buffer start
// and the shim lands where their tail was — the zero-copy trick VLANEncap
// plays on a live packet's headroom, with no allocation. The frame is
// modified in place; the returned slice (buf[off-VLANTagLen:]) is the
// tagged frame.
func InsertVLAN(buf []byte, off int, tag VLANTag) []byte {
	frame := buf[off:]
	if len(frame) < EtherHdrLen || off < VLANTagLen {
		return frame
	}
	out := buf[off-VLANTagLen:]
	copy(out[0:12], frame[0:12]) // shift MACs into the headroom
	// The original EtherType now sits at out[16:18]; the shim overwrites
	// the vacated out[12:16].
	EncodeVLANInPlace(out, tag, 0)
	return out
}

// EncodeVLANInPlace writes the 802.1Q shim into b[12:16], assuming the
// caller has already shifted the MAC addresses 4 bytes toward the front
// (the zero-copy headroom trick VLANEncap uses).
func EncodeVLANInPlace(b []byte, tag VLANTag, innerType uint16) {
	binary.BigEndian.PutUint16(b[12:14], EtherTypeVLAN)
	tci := uint16(tag.PCP&7)<<13 | tag.VID&0x0fff
	binary.BigEndian.PutUint16(b[14:16], tci)
	_ = innerType // inner type already sits at b[16:18] after the shift
}

// ParseVLAN decodes the tag assuming EtherType 0x8100 at b[12:14].
func ParseVLAN(b []byte) (VLANTag, uint16, error) {
	if len(b) < EtherHdrLen+VLANTagLen {
		return VLANTag{}, 0, fmt.Errorf("netpkt: short vlan frame")
	}
	tci := binary.BigEndian.Uint16(b[14:16])
	inner := binary.BigEndian.Uint16(b[16:18])
	return VLANTag{PCP: uint8(tci >> 13), VID: tci & 0x0fff}, inner, nil
}

// --- ARP ---

// ARP operation codes.
const (
	ARPRequest = 1
	ARPReply   = 2
)

// ARPPacket is a decoded IPv4-over-Ethernet ARP body.
type ARPPacket struct {
	Op       uint16
	SenderHA MAC
	SenderIP IPv4
	TargetHA MAC
	TargetIP IPv4
}

// PutARP writes a 28-byte ARP body at b.
func PutARP(b []byte, p ARPPacket) {
	binary.BigEndian.PutUint16(b[0:2], 1)      // HTYPE ethernet
	binary.BigEndian.PutUint16(b[2:4], 0x0800) // PTYPE ipv4
	b[4], b[5] = 6, 4
	binary.BigEndian.PutUint16(b[6:8], p.Op)
	copy(b[8:14], p.SenderHA[:])
	copy(b[14:18], p.SenderIP[:])
	copy(b[18:24], p.TargetHA[:])
	copy(b[24:28], p.TargetIP[:])
}

// ParseARP decodes a 28-byte ARP body.
func ParseARP(b []byte) (ARPPacket, error) {
	if len(b) < ARPLen {
		return ARPPacket{}, fmt.Errorf("netpkt: short ARP body")
	}
	var p ARPPacket
	p.Op = binary.BigEndian.Uint16(b[6:8])
	copy(p.SenderHA[:], b[8:14])
	copy(p.SenderIP[:], b[14:18])
	copy(p.TargetHA[:], b[18:24])
	copy(p.TargetIP[:], b[24:28])
	return p, nil
}

// --- IPv4 ---

// IPv4Header is a decoded (option-less) IPv4 header.
type IPv4Header struct {
	TOS      uint8
	TotalLen uint16
	ID       uint16
	Flags    uint8 // 3 bits
	FragOff  uint16
	TTL      uint8
	Protocol uint8
	Checksum uint16
	Src, Dst IPv4
}

// PutIPv4 writes a 20-byte IPv4 header at b, computing the checksum.
func PutIPv4(b []byte, h IPv4Header) {
	b[0] = 0x45 // version 4, IHL 5
	b[1] = h.TOS
	binary.BigEndian.PutUint16(b[2:4], h.TotalLen)
	binary.BigEndian.PutUint16(b[4:6], h.ID)
	binary.BigEndian.PutUint16(b[6:8], uint16(h.Flags&7)<<13|h.FragOff&0x1fff)
	b[8] = h.TTL
	b[9] = h.Protocol
	b[10], b[11] = 0, 0
	copy(b[12:16], h.Src[:])
	copy(b[16:20], h.Dst[:])
	ck := Checksum(b[:IPv4HdrLen], 0)
	binary.BigEndian.PutUint16(b[10:12], ck)
}

// ParseIPv4 decodes the IPv4 header at b without verifying the checksum.
func ParseIPv4Header(b []byte) (IPv4Header, int, error) {
	if len(b) < IPv4HdrLen {
		return IPv4Header{}, 0, fmt.Errorf("netpkt: short IPv4 header")
	}
	if b[0]>>4 != 4 {
		return IPv4Header{}, 0, fmt.Errorf("netpkt: not IPv4 (version %d)", b[0]>>4)
	}
	ihl := int(b[0]&0x0f) * 4
	if ihl < IPv4HdrLen || len(b) < ihl {
		return IPv4Header{}, 0, fmt.Errorf("netpkt: bad IHL %d", ihl)
	}
	var h IPv4Header
	h.TOS = b[1]
	h.TotalLen = binary.BigEndian.Uint16(b[2:4])
	h.ID = binary.BigEndian.Uint16(b[4:6])
	ff := binary.BigEndian.Uint16(b[6:8])
	h.Flags = uint8(ff >> 13)
	h.FragOff = ff & 0x1fff
	h.TTL = b[8]
	h.Protocol = b[9]
	h.Checksum = binary.BigEndian.Uint16(b[10:12])
	copy(h.Src[:], b[12:16])
	copy(h.Dst[:], b[16:20])
	return h, ihl, nil
}

// VerifyIPv4Checksum recomputes the header checksum over the IHL bytes.
func VerifyIPv4Checksum(b []byte) bool {
	if len(b) < IPv4HdrLen {
		return false
	}
	ihl := int(b[0]&0x0f) * 4
	if ihl < IPv4HdrLen || len(b) < ihl {
		return false
	}
	return Checksum(b[:ihl], 0) == 0
}

// DecrementTTL decrements the TTL at b[8] and incrementally patches the
// checksum per RFC 1624 — the DecIPTTL element's inner loop. It reports
// false (and leaves the packet untouched) when TTL is already ≤ 1.
func DecrementTTL(b []byte) bool {
	if len(b) < IPv4HdrLen || b[8] <= 1 {
		return false
	}
	old := binary.BigEndian.Uint16(b[8:10])
	b[8]--
	new := binary.BigEndian.Uint16(b[8:10])
	ck := binary.BigEndian.Uint16(b[10:12])
	binary.BigEndian.PutUint16(b[10:12], IncrementalChecksumUpdate16(ck, old, new))
	return true
}

// --- UDP ---

// UDPHeader is a decoded UDP header.
type UDPHeader struct {
	SrcPort, DstPort uint16
	Length           uint16
	Checksum         uint16
}

// PutUDP writes a UDP header (checksum left zero = disabled, as permitted
// for IPv4; the IDS checks lengths, not UDP checksums, matching §A.3).
func PutUDP(b []byte, h UDPHeader) {
	binary.BigEndian.PutUint16(b[0:2], h.SrcPort)
	binary.BigEndian.PutUint16(b[2:4], h.DstPort)
	binary.BigEndian.PutUint16(b[4:6], h.Length)
	binary.BigEndian.PutUint16(b[6:8], h.Checksum)
}

// ParseUDP decodes a UDP header.
func ParseUDP(b []byte) (UDPHeader, error) {
	if len(b) < UDPHdrLen {
		return UDPHeader{}, fmt.Errorf("netpkt: short UDP header")
	}
	return UDPHeader{
		SrcPort:  binary.BigEndian.Uint16(b[0:2]),
		DstPort:  binary.BigEndian.Uint16(b[2:4]),
		Length:   binary.BigEndian.Uint16(b[4:6]),
		Checksum: binary.BigEndian.Uint16(b[6:8]),
	}, nil
}

// --- TCP ---

// TCP flag bits.
const (
	TCPFlagFIN = 1 << 0
	TCPFlagSYN = 1 << 1
	TCPFlagRST = 1 << 2
	TCPFlagPSH = 1 << 3
	TCPFlagACK = 1 << 4
)

// TCPHeader is a decoded (option-less) TCP header.
type TCPHeader struct {
	SrcPort, DstPort uint16
	Seq, Ack         uint32
	DataOff          uint8 // in 32-bit words
	Flags            uint8
	Window           uint16
	Checksum         uint16
}

// PutTCP writes a 20-byte TCP header.
func PutTCP(b []byte, h TCPHeader) {
	binary.BigEndian.PutUint16(b[0:2], h.SrcPort)
	binary.BigEndian.PutUint16(b[2:4], h.DstPort)
	binary.BigEndian.PutUint32(b[4:8], h.Seq)
	binary.BigEndian.PutUint32(b[8:12], h.Ack)
	off := h.DataOff
	if off == 0 {
		off = 5
	}
	b[12] = off << 4
	b[13] = h.Flags
	binary.BigEndian.PutUint16(b[14:16], h.Window)
	binary.BigEndian.PutUint16(b[16:18], h.Checksum)
	binary.BigEndian.PutUint16(b[18:20], 0) // urgent
}

// ParseTCP decodes a TCP header.
func ParseTCP(b []byte) (TCPHeader, int, error) {
	if len(b) < TCPHdrLen {
		return TCPHeader{}, 0, fmt.Errorf("netpkt: short TCP header")
	}
	h := TCPHeader{
		SrcPort:  binary.BigEndian.Uint16(b[0:2]),
		DstPort:  binary.BigEndian.Uint16(b[2:4]),
		Seq:      binary.BigEndian.Uint32(b[4:8]),
		Ack:      binary.BigEndian.Uint32(b[8:12]),
		DataOff:  b[12] >> 4,
		Flags:    b[13],
		Window:   binary.BigEndian.Uint16(b[14:16]),
		Checksum: binary.BigEndian.Uint16(b[16:18]),
	}
	off := int(h.DataOff) * 4
	if off < TCPHdrLen || len(b) < off {
		return TCPHeader{}, 0, fmt.Errorf("netpkt: bad TCP data offset %d", h.DataOff)
	}
	return h, off, nil
}

// --- ICMP ---

// ICMP types used by the router configuration.
const (
	ICMPEchoReply    = 0
	ICMPEchoRequest  = 8
	ICMPTimeExceeded = 11
)

// ICMPHeader is a decoded ICMP header (echo-style layout).
type ICMPHeader struct {
	Type, Code uint8
	Checksum   uint16
	ID, Seq    uint16
}

// PutICMP writes an 8-byte ICMP header with a checksum covering hdr+payload.
func PutICMP(b []byte, h ICMPHeader, payload []byte) {
	b[0], b[1] = h.Type, h.Code
	b[2], b[3] = 0, 0
	binary.BigEndian.PutUint16(b[4:6], h.ID)
	binary.BigEndian.PutUint16(b[6:8], h.Seq)
	copy(b[8:], payload)
	ck := Checksum(b[:ICMPHdrLen+len(payload)], 0)
	binary.BigEndian.PutUint16(b[2:4], ck)
}

// ParseICMP decodes an ICMP header.
func ParseICMP(b []byte) (ICMPHeader, error) {
	if len(b) < ICMPHdrLen {
		return ICMPHeader{}, fmt.Errorf("netpkt: short ICMP header")
	}
	return ICMPHeader{
		Type:     b[0],
		Code:     b[1],
		Checksum: binary.BigEndian.Uint16(b[2:4]),
		ID:       binary.BigEndian.Uint16(b[4:6]),
		Seq:      binary.BigEndian.Uint16(b[6:8]),
	}, nil
}

// --- whole-packet builders (used by the traffic generator and tests) ---

// UDPPacketSpec describes a UDP-in-IPv4-in-Ethernet packet to synthesize.
type UDPPacketSpec struct {
	SrcMAC, DstMAC   MAC
	SrcIP, DstIP     IPv4
	SrcPort, DstPort uint16
	TTL              uint8
	TotalLen         int // full frame length including Ethernet header
}

// BuildUDP synthesizes a complete frame of spec.TotalLen bytes into buf
// (which must be at least that large) and returns the slice. Frames below
// the minimum viable size are rounded up to 64 bytes.
func BuildUDP(buf []byte, spec UDPPacketSpec) []byte {
	if spec.TotalLen < 64 {
		spec.TotalLen = 64
	}
	if spec.TTL == 0 {
		spec.TTL = 64
	}
	b := buf[:spec.TotalLen]
	PutEther(b, EtherHeader{Dst: spec.DstMAC, Src: spec.SrcMAC, EtherType: EtherTypeIPv4})
	ipLen := spec.TotalLen - EtherHdrLen
	PutIPv4(b[EtherHdrLen:], IPv4Header{
		TotalLen: uint16(ipLen),
		TTL:      spec.TTL,
		Protocol: ProtoUDP,
		Src:      spec.SrcIP,
		Dst:      spec.DstIP,
	})
	PutUDP(b[EtherHdrLen+IPv4HdrLen:], UDPHeader{
		SrcPort: spec.SrcPort,
		DstPort: spec.DstPort,
		Length:  uint16(ipLen - IPv4HdrLen),
	})
	return b
}

// TCPPacketSpec describes a TCP-in-IPv4-in-Ethernet packet.
type TCPPacketSpec struct {
	SrcMAC, DstMAC   MAC
	SrcIP, DstIP     IPv4
	SrcPort, DstPort uint16
	Flags            uint8
	TTL              uint8
	TotalLen         int
}

// BuildTCP synthesizes a complete TCP frame.
func BuildTCP(buf []byte, spec TCPPacketSpec) []byte {
	if spec.TotalLen < 64 {
		spec.TotalLen = 64
	}
	if spec.TTL == 0 {
		spec.TTL = 64
	}
	if spec.Flags == 0 {
		spec.Flags = TCPFlagACK
	}
	b := buf[:spec.TotalLen]
	PutEther(b, EtherHeader{Dst: spec.DstMAC, Src: spec.SrcMAC, EtherType: EtherTypeIPv4})
	ipLen := spec.TotalLen - EtherHdrLen
	PutIPv4(b[EtherHdrLen:], IPv4Header{
		TotalLen: uint16(ipLen),
		TTL:      spec.TTL,
		Protocol: ProtoTCP,
		Src:      spec.SrcIP,
		Dst:      spec.DstIP,
	})
	PutTCP(b[EtherHdrLen+IPv4HdrLen:], TCPHeader{
		SrcPort: spec.SrcPort, DstPort: spec.DstPort,
		Flags: spec.Flags, Window: 65535, DataOff: 5,
	})
	return b
}

// BuildICMPEcho synthesizes an ICMP echo request frame.
func BuildICMPEcho(buf []byte, srcMAC, dstMAC MAC, srcIP, dstIP IPv4, id, seq uint16, totalLen int) []byte {
	if totalLen < 64 {
		totalLen = 64
	}
	b := buf[:totalLen]
	PutEther(b, EtherHeader{Dst: dstMAC, Src: srcMAC, EtherType: EtherTypeIPv4})
	ipLen := totalLen - EtherHdrLen
	PutIPv4(b[EtherHdrLen:], IPv4Header{
		TotalLen: uint16(ipLen),
		TTL:      64,
		Protocol: ProtoICMP,
		Src:      srcIP,
		Dst:      dstIP,
	})
	icmp := b[EtherHdrLen+IPv4HdrLen:]
	for i := ICMPHdrLen; i < len(icmp); i++ {
		icmp[i] = 0
	}
	PutICMP(icmp, ICMPHeader{Type: ICMPEchoRequest, ID: id, Seq: seq}, icmp[ICMPHdrLen:])
	return b
}
