package netpkt

import (
	"testing"
	"testing/quick"
)

func TestMACRoundTrip(t *testing.T) {
	m, err := ParseMAC("de:ad:be:ef:00:01")
	if err != nil {
		t.Fatal(err)
	}
	if m.String() != "de:ad:be:ef:00:01" {
		t.Fatalf("round trip: %s", m)
	}
}

func TestParseMACErrors(t *testing.T) {
	for _, s := range []string{"", "nonsense", "00:11:22:33:44"} {
		if _, err := ParseMAC(s); err == nil {
			t.Errorf("ParseMAC(%q) succeeded", s)
		}
	}
}

func TestMACPredicates(t *testing.T) {
	bc := MAC{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}
	if !bc.IsBroadcast() || !bc.IsMulticast() {
		t.Fatal("broadcast predicates")
	}
	mc := MAC{0x01, 0, 0x5e, 0, 0, 1}
	if !mc.IsMulticast() || mc.IsBroadcast() {
		t.Fatal("multicast predicates")
	}
	uni := MAC{0x02, 0, 0, 0, 0, 1}
	if uni.IsMulticast() {
		t.Fatal("unicast flagged multicast")
	}
}

func TestIPv4RoundTrip(t *testing.T) {
	ip, err := ParseIPv4("192.168.7.42")
	if err != nil {
		t.Fatal(err)
	}
	if ip.String() != "192.168.7.42" {
		t.Fatalf("round trip: %s", ip)
	}
	if got := IPv4FromUint32(ip.Uint32()); got != ip {
		t.Fatalf("uint32 round trip: %s", got)
	}
}

func TestParseIPv4Errors(t *testing.T) {
	for _, s := range []string{"", "1.2.3", "1.2.3.256", "a.b.c.d"} {
		if _, err := ParseIPv4(s); err == nil {
			t.Errorf("ParseIPv4(%q) succeeded", s)
		}
	}
}

func TestChecksumKnownVector(t *testing.T) {
	// RFC 1071 example-style header.
	hdr := []byte{
		0x45, 0x00, 0x00, 0x73, 0x00, 0x00, 0x40, 0x00,
		0x40, 0x11, 0x00, 0x00, 0xc0, 0xa8, 0x00, 0x01,
		0xc0, 0xa8, 0x00, 0xc7,
	}
	ck := Checksum(hdr, 0)
	if ck != 0xb861 {
		t.Fatalf("checksum = %#04x, want 0xb861", ck)
	}
}

func TestChecksumOddLength(t *testing.T) {
	even := Checksum([]byte{0x12, 0x34, 0x56, 0x00}, 0)
	odd := Checksum([]byte{0x12, 0x34, 0x56}, 0)
	if even != odd {
		t.Fatalf("odd-length padding wrong: %#x vs %#x", odd, even)
	}
}

func TestPutIPv4ChecksumSelfVerifies(t *testing.T) {
	b := make([]byte, IPv4HdrLen)
	PutIPv4(b, IPv4Header{TotalLen: 100, TTL: 64, Protocol: ProtoUDP,
		Src: IPv4{10, 0, 0, 1}, Dst: IPv4{10, 0, 0, 2}})
	if !VerifyIPv4Checksum(b) {
		t.Fatal("freshly built header fails checksum")
	}
	b[8] ^= 0xff // corrupt TTL
	if VerifyIPv4Checksum(b) {
		t.Fatal("corrupted header passes checksum")
	}
}

func TestIPv4HeaderRoundTrip(t *testing.T) {
	want := IPv4Header{TOS: 0x10, TotalLen: 1500, ID: 77, Flags: 2, FragOff: 100,
		TTL: 33, Protocol: ProtoTCP, Src: IPv4{1, 2, 3, 4}, Dst: IPv4{5, 6, 7, 8}}
	b := make([]byte, IPv4HdrLen)
	PutIPv4(b, want)
	got, ihl, err := ParseIPv4Header(b)
	if err != nil {
		t.Fatal(err)
	}
	if ihl != 20 {
		t.Fatalf("ihl = %d", ihl)
	}
	want.Checksum = got.Checksum // computed on write
	if got != want {
		t.Fatalf("round trip:\n got %+v\nwant %+v", got, want)
	}
}

func TestParseIPv4HeaderErrors(t *testing.T) {
	if _, _, err := ParseIPv4Header(make([]byte, 10)); err == nil {
		t.Fatal("short header accepted")
	}
	b := make([]byte, IPv4HdrLen)
	b[0] = 0x65 // version 6
	if _, _, err := ParseIPv4Header(b); err == nil {
		t.Fatal("IPv6 version accepted")
	}
	b[0] = 0x44 // IHL 4 < 5
	if _, _, err := ParseIPv4Header(b); err == nil {
		t.Fatal("bad IHL accepted")
	}
}

func TestDecrementTTLIncrementalChecksum(t *testing.T) {
	b := make([]byte, IPv4HdrLen)
	PutIPv4(b, IPv4Header{TotalLen: 500, TTL: 64, Protocol: ProtoUDP,
		Src: IPv4{10, 1, 1, 1}, Dst: IPv4{10, 2, 2, 2}})
	for ttl := 63; ttl >= 1; ttl-- {
		if !DecrementTTL(b) {
			t.Fatalf("DecrementTTL refused at ttl %d", ttl+1)
		}
		if int(b[8]) != ttl {
			t.Fatalf("TTL = %d, want %d", b[8], ttl)
		}
		if !VerifyIPv4Checksum(b) {
			t.Fatalf("incremental checksum wrong at ttl %d", ttl)
		}
	}
	if DecrementTTL(b) {
		t.Fatal("TTL decremented below 1")
	}
}

func TestIncrementalChecksumMatchesRecompute(t *testing.T) {
	if err := quick.Check(func(ttl uint8, src, dst uint32) bool {
		if ttl < 2 {
			ttl = 2
		}
		b := make([]byte, IPv4HdrLen)
		PutIPv4(b, IPv4Header{TotalLen: 200, TTL: ttl, Protocol: ProtoTCP,
			Src: IPv4FromUint32(src), Dst: IPv4FromUint32(dst)})
		DecrementTTL(b)
		return VerifyIPv4Checksum(b)
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEtherRoundTripAndSwap(t *testing.T) {
	b := make([]byte, EtherHdrLen)
	src, _ := ParseMAC("02:00:00:00:00:01")
	dst, _ := ParseMAC("02:00:00:00:00:02")
	PutEther(b, EtherHeader{Dst: dst, Src: src, EtherType: EtherTypeIPv4})
	h, err := ParseEther(b)
	if err != nil || h.Src != src || h.Dst != dst || h.EtherType != EtherTypeIPv4 {
		t.Fatalf("round trip: %+v err %v", h, err)
	}
	SwapEtherAddrs(b)
	h2, _ := ParseEther(b)
	if h2.Src != dst || h2.Dst != src {
		t.Fatalf("swap failed: %+v", h2)
	}
}

func TestParseEtherShort(t *testing.T) {
	if _, err := ParseEther(make([]byte, 5)); err == nil {
		t.Fatal("short frame accepted")
	}
}

func TestVLANInsertAndParse(t *testing.T) {
	spec := UDPPacketSpec{TotalLen: 100, SrcIP: IPv4{1, 1, 1, 1}, DstIP: IPv4{2, 2, 2, 2}}
	buf := make([]byte, VLANTagLen+100)
	orig := BuildUDP(buf[VLANTagLen:], spec)
	tagged := InsertVLAN(buf, VLANTagLen, VLANTag{PCP: 5, VID: 42})
	if len(tagged) != len(orig)+VLANTagLen {
		t.Fatalf("tagged len = %d", len(tagged))
	}
	h, _ := ParseEther(tagged)
	if h.EtherType != EtherTypeVLAN {
		t.Fatalf("outer ethertype = %#x", h.EtherType)
	}
	tag, inner, err := ParseVLAN(tagged)
	if err != nil || tag.VID != 42 || tag.PCP != 5 || inner != EtherTypeIPv4 {
		t.Fatalf("tag = %+v inner %#x err %v", tag, inner, err)
	}
	// IP header must be intact after the shim.
	if !VerifyIPv4Checksum(tagged[EtherHdrLen+VLANTagLen:]) {
		t.Fatal("payload corrupted by VLAN insertion")
	}
}

func TestARPRoundTrip(t *testing.T) {
	want := ARPPacket{Op: ARPRequest,
		SenderHA: MAC{1, 2, 3, 4, 5, 6}, SenderIP: IPv4{10, 0, 0, 1},
		TargetHA: MAC{}, TargetIP: IPv4{10, 0, 0, 2}}
	b := make([]byte, ARPLen)
	PutARP(b, want)
	got, err := ParseARP(b)
	if err != nil || got != want {
		t.Fatalf("round trip: %+v err %v", got, err)
	}
}

func TestUDPRoundTrip(t *testing.T) {
	want := UDPHeader{SrcPort: 1234, DstPort: 53, Length: 100}
	b := make([]byte, UDPHdrLen)
	PutUDP(b, want)
	got, err := ParseUDP(b)
	if err != nil || got != want {
		t.Fatalf("round trip: %+v err %v", got, err)
	}
}

func TestTCPRoundTrip(t *testing.T) {
	want := TCPHeader{SrcPort: 80, DstPort: 50000, Seq: 1e9, Ack: 2e9,
		DataOff: 5, Flags: TCPFlagSYN | TCPFlagACK, Window: 4096}
	b := make([]byte, TCPHdrLen)
	PutTCP(b, want)
	got, off, err := ParseTCP(b)
	if err != nil || off != 20 {
		t.Fatalf("off %d err %v", off, err)
	}
	if got != want {
		t.Fatalf("round trip:\n got %+v\nwant %+v", got, want)
	}
}

func TestParseTCPBadOffset(t *testing.T) {
	b := make([]byte, TCPHdrLen)
	b[12] = 3 << 4 // data offset 3 words < 5
	if _, _, err := ParseTCP(b); err == nil {
		t.Fatal("bad data offset accepted")
	}
}

func TestBuildUDPWholeFrame(t *testing.T) {
	spec := UDPPacketSpec{
		SrcIP: IPv4{10, 0, 0, 1}, DstIP: IPv4{10, 0, 0, 2},
		SrcPort: 5000, DstPort: 6000, TotalLen: 200,
	}
	b := BuildUDP(make([]byte, 1600), spec)
	if len(b) != 200 {
		t.Fatalf("len = %d", len(b))
	}
	ih, _, err := ParseIPv4Header(b[EtherHdrLen:])
	if err != nil {
		t.Fatal(err)
	}
	if int(ih.TotalLen) != 200-EtherHdrLen || ih.Protocol != ProtoUDP {
		t.Fatalf("ip header: %+v", ih)
	}
	if !VerifyIPv4Checksum(b[EtherHdrLen:]) {
		t.Fatal("checksum")
	}
	uh, _ := ParseUDP(b[EtherHdrLen+IPv4HdrLen:])
	if uh.SrcPort != 5000 || uh.DstPort != 6000 {
		t.Fatalf("udp header: %+v", uh)
	}
	if int(uh.Length) != 200-EtherHdrLen-IPv4HdrLen {
		t.Fatalf("udp length: %d", uh.Length)
	}
}

func TestBuildUDPMinimumSize(t *testing.T) {
	b := BuildUDP(make([]byte, 1600), UDPPacketSpec{TotalLen: 10})
	if len(b) != 64 {
		t.Fatalf("min frame = %d, want 64", len(b))
	}
}

func TestBuildTCPWholeFrame(t *testing.T) {
	b := BuildTCP(make([]byte, 1600), TCPPacketSpec{
		SrcIP: IPv4{1, 1, 1, 1}, DstIP: IPv4{2, 2, 2, 2},
		SrcPort: 1, DstPort: 2, TotalLen: 128,
	})
	ih, _, _ := ParseIPv4Header(b[EtherHdrLen:])
	if ih.Protocol != ProtoTCP {
		t.Fatalf("protocol = %d", ih.Protocol)
	}
	th, _, err := ParseTCP(b[EtherHdrLen+IPv4HdrLen:])
	if err != nil || th.Flags != TCPFlagACK {
		t.Fatalf("tcp: %+v err %v", th, err)
	}
}

func TestBuildICMPEchoChecksum(t *testing.T) {
	b := BuildICMPEcho(make([]byte, 1600), MAC{}, MAC{}, IPv4{1, 1, 1, 1}, IPv4{2, 2, 2, 2}, 7, 9, 98)
	icmp := b[EtherHdrLen+IPv4HdrLen:]
	if Checksum(icmp, 0) != 0 {
		t.Fatal("ICMP checksum does not verify")
	}
	h, err := ParseICMP(icmp)
	if err != nil || h.Type != ICMPEchoRequest || h.ID != 7 || h.Seq != 9 {
		t.Fatalf("icmp: %+v err %v", h, err)
	}
}
