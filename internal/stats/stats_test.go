package stats

import (
	"math"
	"testing"
)

func TestPercentilesExactSmall(t *testing.T) {
	r := NewLatencyRecorder(100)
	for i := 1; i <= 100; i++ {
		r.Record(float64(i))
	}
	if m := r.Median(); math.Abs(m-50.5) > 0.01 {
		t.Fatalf("median = %v", m)
	}
	if p := r.P99(); p < 99 || p > 100 {
		t.Fatalf("p99 = %v", p)
	}
	if r.Min() != 1 || r.Max() != 100 {
		t.Fatalf("min/max = %v/%v", r.Min(), r.Max())
	}
	if mean := r.Mean(); math.Abs(mean-50.5) > 0.01 {
		t.Fatalf("mean = %v", mean)
	}
	if r.Count() != 100 {
		t.Fatalf("count = %d", r.Count())
	}
}

func TestPercentileEdges(t *testing.T) {
	r := NewLatencyRecorder(10)
	if r.Percentile(50) != 0 {
		t.Fatal("empty recorder percentile not 0")
	}
	r.Record(42)
	if r.Percentile(0) != 42 || r.Percentile(100) != 42 || r.Median() != 42 {
		t.Fatal("single-sample percentiles")
	}
}

func TestRecordAfterPercentileKeepsOrder(t *testing.T) {
	r := NewLatencyRecorder(100)
	r.Record(3)
	r.Record(1)
	_ = r.Median() // forces sort
	r.Record(2)
	if m := r.Median(); m != 2 {
		t.Fatalf("median after resort = %v", m)
	}
}

func TestReservoirSamplingBounded(t *testing.T) {
	r := NewLatencyRecorder(1000)
	for i := 0; i < 100000; i++ {
		r.Record(float64(i % 1000))
	}
	if len(r.samples) != 1000 {
		t.Fatalf("reservoir size %d", len(r.samples))
	}
	if r.Count() != 100000 {
		t.Fatalf("count %d", r.Count())
	}
	// Uniform 0..999 → median ≈ 500 within sampling noise.
	if m := r.Median(); m < 400 || m > 600 {
		t.Fatalf("sampled median = %v, want ≈500", m)
	}
}

func TestMeanMinMaxExactUnderSampling(t *testing.T) {
	r := NewLatencyRecorder(10)
	for i := 1; i <= 1000; i++ {
		r.Record(float64(i))
	}
	if r.Min() != 1 || r.Max() != 1000 {
		t.Fatalf("min/max lost under sampling: %v/%v", r.Min(), r.Max())
	}
	if math.Abs(r.Mean()-500.5) > 0.01 {
		t.Fatalf("mean = %v", r.Mean())
	}
}

func TestReset(t *testing.T) {
	r := NewLatencyRecorder(10)
	r.Record(5)
	r.Reset()
	if r.Count() != 0 || r.Median() != 0 || r.Mean() != 0 {
		t.Fatal("reset incomplete")
	}
}

func TestThroughputUnits(t *testing.T) {
	tp := Throughput{Packets: 1000, Bytes: 1000 * 1000, Duration: 1e6} // 1 ms
	// 8e6 bits in 1e6 ns = 8 Gbps; 1000 pkts in 1e-3 s = 1 Mpps.
	if g := tp.Gbps(); math.Abs(g-8) > 1e-9 {
		t.Fatalf("Gbps = %v", g)
	}
	if m := tp.Mpps(); math.Abs(m-1) > 1e-9 {
		t.Fatalf("Mpps = %v", m)
	}
	if tp.String() == "" {
		t.Fatal("empty string")
	}
}

func TestThroughputZeroDuration(t *testing.T) {
	tp := Throughput{Packets: 10, Bytes: 100}
	if tp.Gbps() != 0 || tp.Mpps() != 0 {
		t.Fatal("zero duration must yield zero rates")
	}
}

func TestThroughputAddConcurrentCores(t *testing.T) {
	a := Throughput{Packets: 10, Bytes: 100, Duration: 50}
	a.Add(Throughput{Packets: 20, Bytes: 200, Duration: 70})
	if a.Packets != 30 || a.Bytes != 300 || a.Duration != 70 {
		t.Fatalf("add: %+v", a)
	}
}

func TestMicros(t *testing.T) {
	if MicrosFromNS(1500) != 1.5 {
		t.Fatal("unit conversion")
	}
}
