// Least-squares fits: Figure 4 of the paper annotates every curve with a
// fitted model — linear throughput(f) = a + b·f and quadratic
// latency(f) = a + b·f + c·f² — plus R². These helpers reproduce those
// annotations.
package stats

import "math"

// LinearFit returns the least-squares a, b for y ≈ a + b·x and the R²
// coefficient of determination. It needs at least two points.
func LinearFit(xs, ys []float64) (a, b, r2 float64) {
	n := float64(len(xs))
	if len(xs) != len(ys) || len(xs) < 2 {
		return 0, 0, 0
	}
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return sy / n, 0, 0
	}
	b = (n*sxy - sx*sy) / den
	a = (sy - b*sx) / n
	r2 = rSquared(ys, func(i int) float64 { return a + b*xs[i] })
	return a, b, r2
}

// QuadFit returns the least-squares a, b, c for y ≈ a + b·x + c·x² and R².
// It needs at least three points; degenerate systems return zeros.
func QuadFit(xs, ys []float64) (a, b, c, r2 float64) {
	if len(xs) != len(ys) || len(xs) < 3 {
		return 0, 0, 0, 0
	}
	// Normal equations for the 3-parameter polynomial.
	var s [5]float64 // sums of x^0..x^4
	var t [3]float64 // sums of y·x^0..x^2
	for i := range xs {
		x := xs[i]
		xp := 1.0
		for k := 0; k < 5; k++ {
			s[k] += xp
			if k < 3 {
				t[k] += ys[i] * xp
			}
			xp *= x
		}
	}
	// Solve the symmetric 3x3 system M·[a b c]^T = t with Cramer's rule.
	m := [3][3]float64{
		{s[0], s[1], s[2]},
		{s[1], s[2], s[3]},
		{s[2], s[3], s[4]},
	}
	det := det3(m)
	if math.Abs(det) < 1e-12 {
		return 0, 0, 0, 0
	}
	sub := func(col int) float64 {
		mm := m
		for r := 0; r < 3; r++ {
			mm[r][col] = t[r]
		}
		return det3(mm) / det
	}
	a, b, c = sub(0), sub(1), sub(2)
	r2 = rSquared(ys, func(i int) float64 { return a + b*xs[i] + c*xs[i]*xs[i] })
	return a, b, c, r2
}

func det3(m [3][3]float64) float64 {
	return m[0][0]*(m[1][1]*m[2][2]-m[1][2]*m[2][1]) -
		m[0][1]*(m[1][0]*m[2][2]-m[1][2]*m[2][0]) +
		m[0][2]*(m[1][0]*m[2][1]-m[1][1]*m[2][0])
}

func rSquared(ys []float64, pred func(i int) float64) float64 {
	var mean float64
	for _, y := range ys {
		mean += y
	}
	mean /= float64(len(ys))
	var ssRes, ssTot float64
	for i, y := range ys {
		d := y - pred(i)
		ssRes += d * d
		m := y - mean
		ssTot += m * m
	}
	if ssTot == 0 {
		if ssRes == 0 {
			return 1
		}
		return 0
	}
	return 1 - ssRes/ssTot
}
