// Package stats provides the measurement side of the testbed: latency
// recorders with exact percentiles (reservoir-sampled beyond a bound),
// throughput computation, and small helpers for reporting in the units
// the paper uses (Gbps, Mpps, µs).
package stats

import (
	"fmt"
	"math"
	"sort"

	"packetmill/internal/simrand"
)

// LatencyRecorder accumulates per-packet latencies in nanoseconds.
// Up to maxExact samples are kept exactly; past that it switches to
// uniform reservoir sampling (Vitter's algorithm R), which keeps
// percentile estimates unbiased on arbitrarily long runs.
type LatencyRecorder struct {
	samples  []float64
	maxExact int
	seen     uint64
	rng      *simrand.Rand
	sum      float64
	min, max float64
	sorted   bool
}

// NewLatencyRecorder returns a recorder bounded at maxExact retained
// samples (0 means a 1M default).
func NewLatencyRecorder(maxExact int) *LatencyRecorder {
	if maxExact <= 0 {
		maxExact = 1 << 20
	}
	return &LatencyRecorder{
		maxExact: maxExact,
		rng:      simrand.New(0x1a7e4c),
		min:      math.Inf(1),
		max:      math.Inf(-1),
	}
}

// Record adds one latency sample (ns).
func (r *LatencyRecorder) Record(ns float64) {
	r.seen++
	r.sum += ns
	if ns < r.min {
		r.min = ns
	}
	if ns > r.max {
		r.max = ns
	}
	r.sorted = false
	if len(r.samples) < r.maxExact {
		r.samples = append(r.samples, ns)
		return
	}
	// Reservoir: replace a random element with probability maxExact/seen.
	if j := r.rng.Uint64n(r.seen); j < uint64(r.maxExact) {
		r.samples[j] = ns
	}
}

// Count returns the number of recorded samples (including sampled-out ones).
func (r *LatencyRecorder) Count() uint64 { return r.seen }

// Mean returns the exact mean over all recorded samples.
func (r *LatencyRecorder) Mean() float64 {
	if r.seen == 0 {
		return 0
	}
	return r.sum / float64(r.seen)
}

// Min and Max are exact over all samples.
func (r *LatencyRecorder) Min() float64 {
	if r.seen == 0 {
		return 0
	}
	return r.min
}

// Max returns the largest recorded sample.
func (r *LatencyRecorder) Max() float64 {
	if r.seen == 0 {
		return 0
	}
	return r.max
}

// Percentile returns the p-th percentile (0 < p ≤ 100) using linear
// interpolation between closest ranks.
func (r *LatencyRecorder) Percentile(p float64) float64 {
	if len(r.samples) == 0 {
		return 0
	}
	if !r.sorted {
		sort.Float64s(r.samples)
		r.sorted = true
	}
	if p <= 0 {
		return r.samples[0]
	}
	if p >= 100 {
		return r.samples[len(r.samples)-1]
	}
	rank := p / 100 * float64(len(r.samples)-1)
	lo := int(rank)
	frac := rank - float64(lo)
	if lo+1 >= len(r.samples) {
		return r.samples[lo]
	}
	return r.samples[lo]*(1-frac) + r.samples[lo+1]*frac
}

// Median is the 50th percentile.
func (r *LatencyRecorder) Median() float64 { return r.Percentile(50) }

// P99 is the 99th percentile (the paper's tail-latency metric).
func (r *LatencyRecorder) P99() float64 { return r.Percentile(99) }

// Summary is the distribution digest reports embed, in the recorder's
// native nanoseconds.
type Summary struct {
	Count                               uint64
	Min, Mean, P50, P90, P99, P999, Max float64
}

// Summarize digests the recorded distribution.
func (r *LatencyRecorder) Summarize() Summary {
	return Summary{
		Count: r.seen,
		Min:   r.Min(),
		Mean:  r.Mean(),
		P50:   r.Percentile(50),
		P90:   r.Percentile(90),
		P99:   r.Percentile(99),
		P999:  r.Percentile(99.9),
		Max:   r.Max(),
	}
}

// Reset clears the recorder.
func (r *LatencyRecorder) Reset() {
	r.samples = r.samples[:0]
	r.seen = 0
	r.sum = 0
	r.min = math.Inf(1)
	r.max = math.Inf(-1)
	r.sorted = false
}

// Throughput summarizes a measured run.
type Throughput struct {
	Packets  uint64
	Bytes    uint64
	Duration float64 // ns
}

// Gbps returns goodput in gigabits per second.
func (t Throughput) Gbps() float64 {
	if t.Duration <= 0 {
		return 0
	}
	return float64(t.Bytes) * 8 / t.Duration
}

// Mpps returns millions of packets per second.
func (t Throughput) Mpps() float64 {
	if t.Duration <= 0 {
		return 0
	}
	return float64(t.Packets) * 1e3 / t.Duration
}

// Add accumulates another measurement (e.g., per-core partials). The
// duration keeps the maximum — cores run concurrently, not serially.
func (t *Throughput) Add(o Throughput) {
	t.Packets += o.Packets
	t.Bytes += o.Bytes
	if o.Duration > t.Duration {
		t.Duration = o.Duration
	}
}

// String renders "X.X Gbps / Y.YY Mpps".
func (t Throughput) String() string {
	return fmt.Sprintf("%.2f Gbps / %.3f Mpps", t.Gbps(), t.Mpps())
}

// MicrosFromNS converts nanoseconds to microseconds for reporting.
func MicrosFromNS(ns float64) float64 { return ns / 1e3 }
