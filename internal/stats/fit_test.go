package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestLinearFitExact(t *testing.T) {
	xs := []float64{1.2, 1.6, 2.0, 2.4, 2.8}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 6.854 + 22.50*x // the paper's Vanilla(f) fit
	}
	a, b, r2 := LinearFit(xs, ys)
	if !approx(a, 6.854, 1e-9) || !approx(b, 22.50, 1e-9) || !approx(r2, 1, 1e-12) {
		t.Fatalf("a=%v b=%v r2=%v", a, b, r2)
	}
}

func TestLinearFitNoise(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6}
	ys := []float64{2.1, 3.9, 6.2, 7.8, 10.1, 11.9}
	a, b, r2 := LinearFit(xs, ys)
	if !approx(b, 2, 0.1) || !approx(a, 0, 0.4) {
		t.Fatalf("a=%v b=%v", a, b)
	}
	if r2 < 0.99 {
		t.Fatalf("r2=%v", r2)
	}
}

func TestLinearFitDegenerate(t *testing.T) {
	if _, _, r2 := LinearFit([]float64{1}, []float64{2}); r2 != 0 {
		t.Fatal("single point fit")
	}
	// All-equal x: zero slope, no crash.
	a, b, _ := LinearFit([]float64{2, 2, 2}, []float64{1, 2, 3})
	if b != 0 || !approx(a, 2, 1e-9) {
		t.Fatalf("vertical fit: a=%v b=%v", a, b)
	}
}

func TestQuadFitExact(t *testing.T) {
	// The paper's Vanilla latency fit: 874.522 - 367.700f + 63.707f².
	xs := []float64{1.2, 1.4, 1.8, 2.2, 2.6, 3.0}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 874.522 - 367.700*x + 63.707*x*x
	}
	a, b, c, r2 := QuadFit(xs, ys)
	if !approx(a, 874.522, 1e-6) || !approx(b, -367.700, 1e-6) || !approx(c, 63.707, 1e-6) {
		t.Fatalf("a=%v b=%v c=%v", a, b, c)
	}
	if !approx(r2, 1, 1e-9) {
		t.Fatalf("r2=%v", r2)
	}
}

func TestQuadFitDegenerate(t *testing.T) {
	if _, _, _, r2 := QuadFit([]float64{1, 2}, []float64{1, 2}); r2 != 0 {
		t.Fatal("two-point quad fit")
	}
	// Identical xs: singular system → zeros, no panic.
	a, b, c, _ := QuadFit([]float64{1, 1, 1, 1}, []float64{1, 2, 3, 4})
	if a != 0 || b != 0 || c != 0 {
		t.Fatalf("singular system: %v %v %v", a, b, c)
	}
}

func TestQuadFitRecoversRandomPolynomials(t *testing.T) {
	xs := []float64{0.5, 1, 1.5, 2, 2.5, 3, 3.5}
	if err := quick.Check(func(ai, bi, ci int8) bool {
		a0, b0, c0 := float64(ai), float64(bi), float64(ci)
		ys := make([]float64, len(xs))
		for i, x := range xs {
			ys[i] = a0 + b0*x + c0*x*x
		}
		a, b, c, _ := QuadFit(xs, ys)
		return approx(a, a0, 1e-6) && approx(b, b0, 1e-6) && approx(c, c0, 1e-6)
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRSquaredBounds(t *testing.T) {
	// A constant series predicted perfectly → R² = 1; predicted wrong → 0.
	ys := []float64{5, 5, 5}
	if r := rSquared(ys, func(int) float64 { return 5 }); r != 1 {
		t.Fatalf("perfect constant fit r2=%v", r)
	}
	if r := rSquared(ys, func(int) float64 { return 7 }); r != 0 {
		t.Fatalf("wrong constant fit r2=%v", r)
	}
}
