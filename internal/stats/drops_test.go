package stats

import (
	"strings"
	"testing"
)

// The drop taxonomy is an exported contract: every reason must carry a
// unique, stable, lint-clean name that round-trips through the parser,
// appears as the reason's report-JSON key, and is usable verbatim as a
// Prometheus label value. Adding a reason without wiring its name blows
// up here instead of in a dashboard.
func TestDropTaxonomyRoundTrip(t *testing.T) {
	reasons := Reasons()
	if len(reasons) != int(NumDropReasons) {
		t.Fatalf("Reasons() returned %d members, want %d", len(reasons), NumDropReasons)
	}

	seen := map[string]DropReason{}
	for _, r := range reasons {
		name := r.String()
		if name == "" {
			t.Fatalf("reason %d has an empty name", r)
		}
		if strings.HasPrefix(name, "reason-") {
			t.Fatalf("reason %d has the fallback name %q — dropNames is missing an entry", r, name)
		}
		if prev, dup := seen[name]; dup {
			t.Fatalf("reasons %d and %d share the name %q", prev, r, name)
		}
		seen[name] = r

		// Round-trip through the parser.
		back, ok := ParseDropReason(name)
		if !ok || back != r {
			t.Fatalf("ParseDropReason(%q) = (%d, %v), want (%d, true)", name, back, ok, r)
		}

		// Names double as Prometheus label values and JSON keys: keep
		// them to the charset that needs no escaping in either format.
		for i := 0; i < len(name); i++ {
			c := name[i]
			ok := c == '-' || (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9')
			if !ok {
				t.Fatalf("reason %q contains %q — not safe as a label value / JSON key", name, c)
			}
		}
	}

	// Unknown names must not parse.
	if _, ok := ParseDropReason("no-such-reason"); ok {
		t.Fatal("ParseDropReason accepted an unknown name")
	}

	// Every reason's name is its report-JSON key.
	var c DropCounters
	for i, r := range reasons {
		c.Add(r, uint64(i)+1)
	}
	m := c.Map()
	if len(m) != len(reasons) {
		t.Fatalf("Map() has %d keys, want %d", len(m), len(reasons))
	}
	for i, r := range reasons {
		if got := m[r.String()]; got != uint64(i)+1 {
			t.Fatalf("Map()[%q] = %d, want %d", r.String(), got, i+1)
		}
	}
}

// The family predicates partition the taxonomy the way the flow log's
// verdict mapping assumes: no reason is both overload and flow-table.
func TestDropFamiliesDisjoint(t *testing.T) {
	var overload, flowTable int
	for _, r := range Reasons() {
		if r.IsOverload() && r.IsFlowTable() {
			t.Fatalf("reason %s claims both families", r)
		}
		if r.IsOverload() {
			overload++
		}
		if r.IsFlowTable() {
			flowTable++
		}
	}
	if overload == 0 || flowTable == 0 {
		t.Fatalf("family predicates match nothing (overload=%d flow-table=%d)", overload, flowTable)
	}
}
