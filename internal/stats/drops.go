// Drop accounting: a shared taxonomy of the reasons a packet can be lost
// anywhere in the datapath. Overload is a first-class operating point for
// a per-core 100-Gbps pipeline — the paper's latency knee (Fig. 1) and the
// X-Change pool-sizing rule (§3.1) are both overload phenomena — so every
// layer that sheds load (NIC rings, PMD pools, the Click driver, the fault
// engine) counts what it dropped and why, instead of panicking or losing
// packets silently. The testbed folds every layer's counters into one
// DropCounters per run and checks the conservation invariant
// rx == tx + Σ drops(by reason) after chaos runs.
package stats

import (
	"fmt"
	"strings"
)

// DropReason classifies one cause of packet loss.
type DropReason uint8

const (
	// DropEngine: the network function deliberately killed the packet
	// (filter policy, TTL expiry, no route, ...).
	DropEngine DropReason = iota
	// DropRxNoBuf: the NIC had no posted RX buffer for an arriving frame
	// (hardware drop semantics — the driver fell behind on refill).
	DropRxNoBuf
	// DropRxRingFull: the RX completion ring was full.
	DropRxRingFull
	// DropRxRunt: the frame arrived below the 60-byte Ethernet minimum
	// (the MAC discards runts before they reach a descriptor).
	DropRxRunt
	// DropPoolExhausted: a descriptor pool (X-Change exchange pool, the
	// Copying model's framework packet pool) or a mempool had nothing
	// free on the RX path — the §3.1 "pool ≥ burst + enqueued" rule
	// violated at run time.
	DropPoolExhausted
	// DropTxRingFull: the TX ring stayed full and the driver-level
	// backpressure queue overflowed.
	DropTxRingFull
	// DropWireFault: the fault engine discarded the frame on the wire
	// (random or bursty loss).
	DropWireFault
	// DropLinkDown: the frame arrived during an injected link flap.
	DropLinkDown
	// DropOverloadShed: the overload control plane's tail-drop shedder
	// refused the frame at the PMD RX boundary, before conversion cost
	// was paid.
	DropOverloadShed
	// DropOverloadRED: the RED-style probabilistic shedder dropped the
	// frame with occupancy-proportional probability.
	DropOverloadRED
	// DropOverloadPrio: the priority-aware shedder refused the frame
	// because its traffic class did not clear the occupancy threshold.
	DropOverloadPrio
	// DropOverloadRestart: the watchdog's drain-and-restart recovery
	// flushed the frame from a wedged pipeline's queues.
	DropOverloadRestart
	// DropTxTransient: a live wire send failed with a transient errno
	// (EAGAIN/ENOBUFS) and stayed failed after bounded-backoff retries.
	DropTxTransient
	// DropTxOversize: the frame exceeded the port's MTU and was refused
	// at the TX boundary — a configuration error (mismatched MTUs, a
	// missing fragmentation element), not ring congestion, so it gets
	// its own reason instead of polluting tx-ring-full.
	DropTxOversize
	// DropFlowTableFull: a stateful element's flow table refused a new
	// flow — the table is at capacity and the eviction policy found no
	// victim it was allowed to displace (everything resident outranked
	// the newcomer). Bounded state instead of unbounded growth.
	DropFlowTableFull
	// DropFlowTableNoPort: the NAT's external-port pool was exhausted —
	// every port is pinned by a live flow, so the new flow cannot be
	// given a translation.
	DropFlowTableNoPort
	// DropFlowTableInvalid: the connection tracker refused the packet as
	// inconsistent with tracked state (strict mode: e.g. a non-SYN TCP
	// segment for a flow the table has never seen).
	DropFlowTableInvalid

	// NumDropReasons bounds the taxonomy.
	NumDropReasons
)

var dropNames = [NumDropReasons]string{
	"engine",
	"rx-no-buf",
	"rx-ring-full",
	"rx-runt",
	"pool-exhausted",
	"tx-ring-full",
	"wire-fault",
	"link-down",
	"overload-shed",
	"overload-red",
	"overload-prio",
	"overload-restart",
	"tx-transient",
	"tx-oversize",
	"flow-table-full",
	"flow-table-no-port",
	"flow-table-invalid",
}

// IsOverload reports whether r belongs to the DropOverload* family —
// sheds and flushes initiated by the overload control plane rather than
// by resource exhaustion inside the datapath.
func (r DropReason) IsOverload() bool {
	return r >= DropOverloadShed && r <= DropOverloadRestart
}

// IsFlowTable reports whether r belongs to the DropFlowTable* family —
// packets refused by a stateful element's bounded flow table (capacity
// pressure, port exhaustion, or a strict-mode state verdict) rather than
// by the forwarding datapath itself.
func (r DropReason) IsFlowTable() bool {
	return r >= DropFlowTableFull && r <= DropFlowTableInvalid
}

// String names the reason the way run reports print it.
func (r DropReason) String() string {
	if r < NumDropReasons {
		return dropNames[r]
	}
	return fmt.Sprintf("reason-%d", uint8(r))
}

// ParseDropReason inverts String for the taxonomy's members, so
// exporters and their round-trip tests can map label values back to
// reasons.
func ParseDropReason(name string) (DropReason, bool) {
	for i, n := range dropNames {
		if n == name {
			return DropReason(i), true
		}
	}
	return NumDropReasons, false
}

// Reasons returns every member of the taxonomy in declaration order —
// the iteration source for exporters that must emit all reasons, even
// at zero, and for exhaustiveness tests.
func Reasons() []DropReason {
	out := make([]DropReason, NumDropReasons)
	for i := range out {
		out[i] = DropReason(i)
	}
	return out
}

// DropCounters is a per-reason drop ledger. The zero value is ready to
// use; layers embed one and the testbed merges them at the end of a run.
type DropCounters [NumDropReasons]uint64

// Add records n drops for reason r.
func (d *DropCounters) Add(r DropReason, n uint64) {
	if r < NumDropReasons {
		d[r] += n
	}
}

// Get returns the count for reason r.
func (d *DropCounters) Get(r DropReason) uint64 {
	if r < NumDropReasons {
		return d[r]
	}
	return 0
}

// Total sums every reason.
func (d *DropCounters) Total() uint64 {
	var t uint64
	for _, v := range d {
		t += v
	}
	return t
}

// Merge accumulates another ledger into this one.
func (d *DropCounters) Merge(o *DropCounters) {
	for i := range d {
		d[i] += o[i]
	}
}

// Reset zeroes the ledger.
func (d *DropCounters) Reset() { *d = DropCounters{} }

// Map returns the non-zero reasons keyed by name, for JSON reports.
func (d *DropCounters) Map() map[string]uint64 {
	out := map[string]uint64{}
	for i, v := range d {
		if v > 0 {
			out[DropReason(i).String()] = v
		}
	}
	return out
}

// String renders the non-zero reasons, e.g. "tx-ring-full=12 engine=3";
// "none" when nothing was dropped.
func (d *DropCounters) String() string {
	var parts []string
	for i, v := range d {
		if v > 0 {
			parts = append(parts, fmt.Sprintf("%s=%d", DropReason(i), v))
		}
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, " ")
}
