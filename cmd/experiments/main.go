// Command experiments regenerates the paper's tables and figures on the
// simulated testbed and writes one TSV per exhibit.
//
//	experiments -list
//	experiments -run fig4 -scale 0.5
//	experiments -run all -out results/
//	experiments -run all -parallel 8
//	experiments -run all -scale 0.2 -bench BENCH_experiments.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"time"

	"packetmill/internal/exp"
)

// benchEntry is one exhibit's row in the -bench baseline file. Allocs is
// the heap-allocation count for the whole exhibit (per-packet steady-state
// allocations are separately gated to zero by the testbed's AllocsPerRun
// test — this counter tracks the setup-and-sweep total over time).
type benchEntry struct {
	ID        string  `json:"id"`
	WallMS    float64 `json:"wall_ms"`
	Allocs    uint64  `json:"allocs"`
	AllocsMiB float64 `json:"allocs_mib"`
}

type benchFile struct {
	Scale    float64         `json:"scale"`
	Parallel int             `json:"parallel"`
	TotalMS  float64         `json:"total_ms"`
	Datapath []datapathEntry `json:"datapath"`
	Exhibits []benchEntry    `json:"exhibits"`
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}

func main() {
	var (
		list       = flag.Bool("list", false, "list experiments and exit")
		run        = flag.String("run", "all", "experiment id to run, or 'all'")
		scale      = flag.Float64("scale", 1.0, "packet-count scale (0,1]")
		out        = flag.String("out", "", "directory for result files (default: stdout)")
		asJSON     = flag.Bool("json", false, "emit tables as JSON (rows keyed by column) instead of TSV")
		parallel   = flag.Int("parallel", exp.DefaultWorkers(), "worker-pool size for run units (1 = serial)")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file on exit")
		benchOut   = flag.String("bench", "", "write a JSON benchmark baseline (wall-clock and allocations per exhibit) to this file and suppress table output")
	)
	flag.Parse()

	if *list {
		for _, e := range exp.All() {
			fmt.Printf("%-10s %s\n", e.ID, e.Title)
		}
		return
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	var todo []exp.Experiment
	if *run == "all" {
		todo = exp.All()
	} else {
		e, ok := exp.ByID(*run)
		if !ok {
			fmt.Fprintf(os.Stderr, "experiments: unknown id %q (try -list)\n", *run)
			os.Exit(1)
		}
		todo = []exp.Experiment{e}
	}

	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fatal(err)
		}
	}

	bench := benchFile{Scale: *scale, Parallel: *parallel}
	totalStart := time.Now()
	for _, e := range todo {
		start := time.Now()
		var memBefore runtime.MemStats
		if *benchOut != "" {
			runtime.ReadMemStats(&memBefore)
		}
		fmt.Fprintf(os.Stderr, "running %s — %s...\n", e.ID, e.Title)
		tables := e.RunParallel(*scale, *parallel)
		wall := time.Since(start)
		if *benchOut != "" {
			var memAfter runtime.MemStats
			runtime.ReadMemStats(&memAfter)
			bench.Exhibits = append(bench.Exhibits, benchEntry{
				ID:        e.ID,
				WallMS:    float64(wall.Microseconds()) / 1e3,
				Allocs:    memAfter.Mallocs - memBefore.Mallocs,
				AllocsMiB: float64(memAfter.TotalAlloc-memBefore.TotalAlloc) / (1 << 20),
			})
		}
		for _, t := range tables {
			if *benchOut != "" && *out == "" {
				continue // baseline mode: numbers, not tables
			}
			var body []byte
			ext := ".tsv"
			if *asJSON {
				b, err := t.JSON()
				if err != nil {
					fatal(err)
				}
				body, ext = append(b, '\n'), ".json"
			} else {
				body = []byte(t.TSV())
			}
			if *out == "" {
				os.Stdout.Write(body)
				fmt.Println()
				continue
			}
			path := filepath.Join(*out, t.ID+ext)
			if err := os.WriteFile(path, body, 0o644); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "  wrote %s\n", path)
		}
		fmt.Fprintf(os.Stderr, "  done in %v\n", wall.Round(time.Millisecond))
	}

	if *benchOut != "" {
		dp, err := datapathBench()
		if err != nil {
			fatal(err)
		}
		bench.Datapath = dp
		bench.TotalMS = float64(time.Since(totalStart).Microseconds()) / 1e3
		b, err := json.MarshalIndent(bench, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*benchOut, append(b, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s (%d exhibits, %.0f ms total)\n",
			*benchOut, len(bench.Exhibits), bench.TotalMS)
	}

	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatal(err)
		}
	}
}
