// Command experiments regenerates the paper's tables and figures on the
// simulated testbed and writes one TSV per exhibit.
//
//	experiments -list
//	experiments -run fig4 -scale 0.5
//	experiments -run all -out results/
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"packetmill/internal/exp"
)

func main() {
	var (
		list  = flag.Bool("list", false, "list experiments and exit")
		run   = flag.String("run", "all", "experiment id to run, or 'all'")
		scale = flag.Float64("scale", 1.0, "packet-count scale (0,1]")
		out   = flag.String("out", "", "directory for result files (default: stdout)")
		asJSON = flag.Bool("json", false, "emit tables as JSON (rows keyed by column) instead of TSV")
	)
	flag.Parse()

	if *list {
		for _, e := range exp.All() {
			fmt.Printf("%-10s %s\n", e.ID, e.Title)
		}
		return
	}

	var todo []exp.Experiment
	if *run == "all" {
		todo = exp.All()
	} else {
		e, ok := exp.ByID(*run)
		if !ok {
			fmt.Fprintf(os.Stderr, "experiments: unknown id %q (try -list)\n", *run)
			os.Exit(1)
		}
		todo = []exp.Experiment{e}
	}

	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
	}

	for _, e := range todo {
		start := time.Now()
		fmt.Fprintf(os.Stderr, "running %s — %s...\n", e.ID, e.Title)
		tables := e.Run(*scale)
		for _, t := range tables {
			var body []byte
			ext := ".tsv"
			if *asJSON {
				b, err := t.JSON()
				if err != nil {
					fmt.Fprintln(os.Stderr, "experiments:", err)
					os.Exit(1)
				}
				body, ext = append(b, '\n'), ".json"
			} else {
				body = []byte(t.TSV())
			}
			if *out == "" {
				os.Stdout.Write(body)
				fmt.Println()
				continue
			}
			path := filepath.Join(*out, t.ID+ext)
			if err := os.WriteFile(path, body, 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "  wrote %s\n", path)
		}
		fmt.Fprintf(os.Stderr, "  done in %v\n", time.Since(start).Round(time.Millisecond))
	}
}
