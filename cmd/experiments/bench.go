package main

import (
	"fmt"
	"runtime"

	"packetmill/internal/click"
	"packetmill/internal/core"
	"packetmill/internal/nf"
	"packetmill/internal/overload"
	"packetmill/internal/testbed"
	"packetmill/internal/trafficgen"
)

// datapathEntry is one canonical forwarding loop's row in the bench
// baseline. PpsPerCore and GbpsPerCore come from simulated time, so they
// are exactly reproducible across machines — a regression means the
// performance model changed, not that CI drew a slow runner.
// AllocsPerPacket is the whole run's heap allocations (setup included)
// over the frames offered; setup amortizes to a deterministic constant,
// so any per-packet growth is a real allocation creeping in.
type datapathEntry struct {
	Name         string  `json:"name"`
	PpsPerCore   float64 `json:"pps_per_core"`
	GbpsPerCore  float64 `json:"gbps_per_core"`
	Packets      int     `json:"packets"`
	AllocsPerPkt float64 `json:"allocs_per_packet"`
}

// datapathBench measures the canonical datapaths the regression gate
// tracks: the plain mirror under both metadata models, the milled
// router, and the mirror with the overload control plane armed (the
// control plane must stay free when the core is healthy).
func datapathBench() ([]datapathEntry, error) {
	const packets = 50000
	cases := []struct {
		name     string
		config   string
		model    click.MetadataModel
		mill     bool
		profiled bool
		freq     float64
		cores    int
		overload *overload.Config
		traffic  func(nicID int, cfg trafficgen.Config) trafficgen.Source
	}{
		{name: "mirror-copying", config: nf.Mirror(0, 32), model: click.Copying},
		{name: "mirror-xchange", config: nf.Mirror(0, 32), model: click.XChange},
		// The router rows run CPU-bound (1.6 GHz): at 2.3 both milled
		// builds hit the NIC cap and pps/core stops reflecting codegen.
		{name: "router-milled", config: nf.Router(32), model: click.XChange,
			mill: true, freq: 1.6},
		// The feedback loop closed: static passes, then a short profiling
		// run feeds element fusion, classifier compilation, and hot
		// layout. Gated ≥ router-milled by benchcheck.
		{name: "router-milled-fused", config: nf.Router(32), model: click.XChange,
			mill: true, profiled: true, freq: 1.6},
		{name: "mirror-xchange-overload", config: nf.Mirror(0, 32), model: click.XChange,
			overload: &overload.Config{Policy: overload.PolicyTailDrop}},
		// The NAT on its conntrack shard under flow churn: every packet
		// pays the flow-table lookup, new flows pay the insert + port
		// allocation, and the timer wheel sweeps inline — the state
		// plane's per-packet cost is gated alongside the stateless paths.
		{name: "nat-conntrack", config: nf.NATRouter(32), model: click.XChange,
			traffic: func(nicID int, cfg trafficgen.Config) trafficgen.Source {
				return trafficgen.NewChurn(trafficgen.ChurnConfig{
					Config: cfg, Concurrent: 4096, FlowPackets: 8,
				})
			}},
		// The per-core datapaths must not dilute: offered load scales with
		// the core count (100 Gbps per core), so pps/core at N cores is
		// gated against the same 10% band as the single-core rows.
		{name: "mirror-xchange-2core", config: nf.Mirror(0, 32), model: click.XChange, cores: 2},
		{name: "mirror-xchange-4core", config: nf.Mirror(0, 32), model: click.XChange, cores: 4},
	}
	var out []datapathEntry
	for _, c := range cases {
		p, err := core.Parse(c.config)
		if err != nil {
			return nil, fmt.Errorf("bench %s: %w", c.name, err)
		}
		p.Model = c.model
		if c.mill {
			if err := p.Mill(); err != nil {
				return nil, fmt.Errorf("bench %s: %w", c.name, err)
			}
		}
		freq := c.freq
		if freq == 0 {
			freq = 2.3
		}
		if c.profiled {
			prof, err := p.CaptureProfile(testbed.Options{
				FreqGHz: freq, RateGbps: 100, Packets: packets / 10, Seed: 1,
			})
			if err != nil {
				return nil, fmt.Errorf("bench %s: profile: %w", c.name, err)
			}
			if err := p.MillProfileGuided(prof); err != nil {
				return nil, fmt.Errorf("bench %s: %w", c.name, err)
			}
		}
		cores := c.cores
		if cores == 0 {
			cores = 1
		}
		nPackets := packets * cores
		o := testbed.Options{
			FreqGHz: freq, RateGbps: 100 * float64(cores), Packets: nPackets,
			Seed: 1, Cores: cores, Overload: c.overload, Traffic: c.traffic,
		}
		runtime.GC()
		runtime.GC()
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		res, err := p.Run(o)
		runtime.ReadMemStats(&after)
		if err != nil {
			return nil, fmt.Errorf("bench %s: %w", c.name, err)
		}
		out = append(out, datapathEntry{
			Name:         c.name,
			PpsPerCore:   res.Mpps() * 1e6 / float64(cores),
			GbpsPerCore:  res.Gbps() / float64(cores),
			Packets:      nPackets,
			AllocsPerPkt: float64(after.Mallocs-before.Mallocs) / float64(nPackets),
		})
	}
	return out, nil
}
