// Command benchcheck gates the performance trajectory: it compares a
// fresh `make bench` output against the committed BENCH_baseline.json
// and fails when the datapath regresses.
//
//	benchcheck -baseline BENCH_baseline.json -fresh BENCH_experiments.json
//
// The gated numbers are the machine-independent ones. Pps/core and
// Gbps/core come from simulated time, so a drop beyond the tolerance
// (default 10%) means the performance model itself got slower.
// Allocs/packet is gated to "no increase" (modulo a small epsilon for
// runtime background noise) — the zero-alloc steady state is a design
// invariant, and even setup allocations are deterministic. Wall-clock
// per exhibit is reported but never gated: CI runners are too noisy
// for it to mean anything.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

type datapathEntry struct {
	Name         string  `json:"name"`
	PpsPerCore   float64 `json:"pps_per_core"`
	GbpsPerCore  float64 `json:"gbps_per_core"`
	Packets      int     `json:"packets"`
	AllocsPerPkt float64 `json:"allocs_per_packet"`
}

type benchEntry struct {
	ID     string  `json:"id"`
	WallMS float64 `json:"wall_ms"`
	Allocs uint64  `json:"allocs"`
}

type benchFile struct {
	Scale    float64         `json:"scale"`
	Datapath []datapathEntry `json:"datapath"`
	Exhibits []benchEntry    `json:"exhibits"`
}

func load(path string) (*benchFile, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f benchFile
	if err := json.Unmarshal(raw, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &f, nil
}

func main() {
	var (
		basePath  = flag.String("baseline", "BENCH_baseline.json", "committed baseline")
		freshPath = flag.String("fresh", "BENCH_experiments.json", "fresh `make bench` output")
		tol       = flag.Float64("tol", 0.10, "allowed fractional pps/core regression")
		allocEps  = flag.Float64("alloc-eps", 0.01, "allowed allocs/packet increase (runtime noise)")
	)
	flag.Parse()

	base, err := load(*basePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcheck:", err)
		os.Exit(1)
	}
	fresh, err := load(*freshPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcheck:", err)
		os.Exit(1)
	}

	freshDP := map[string]datapathEntry{}
	for _, e := range fresh.Datapath {
		freshDP[e.Name] = e
	}
	failed := false
	for _, b := range base.Datapath {
		f, ok := freshDP[b.Name]
		if !ok {
			fmt.Printf("FAIL %-24s missing from fresh bench\n", b.Name)
			failed = true
			continue
		}
		status := "ok  "
		switch {
		case f.PpsPerCore < b.PpsPerCore*(1-*tol):
			status, failed = "FAIL", true
		case f.AllocsPerPkt > b.AllocsPerPkt+*allocEps:
			status, failed = "FAIL", true
		}
		fmt.Printf("%s %-24s pps/core %11.0f -> %11.0f (%+5.1f%%)  allocs/pkt %6.3f -> %6.3f\n",
			status, b.Name, b.PpsPerCore, f.PpsPerCore,
			100*(f.PpsPerCore-b.PpsPerCore)/b.PpsPerCore,
			b.AllocsPerPkt, f.AllocsPerPkt)
	}

	// Cross-entry invariant: profile-guided milling must never lose to the
	// static mill it extends. Compared within the fresh run (not against
	// the baseline) so the rule holds on any machine-independent drift.
	// The relative epsilon forgives last-ULP summation-order noise when
	// both builds saturate the same bottleneck and genuinely tie.
	if fused, ok := freshDP["router-milled-fused"]; ok {
		if static, ok := freshDP["router-milled"]; ok {
			if fused.PpsPerCore < static.PpsPerCore*(1-1e-9) {
				fmt.Printf("FAIL %-24s pps/core %11.0f < static router-milled %11.0f\n",
					"router-milled-fused", fused.PpsPerCore, static.PpsPerCore)
				failed = true
			} else {
				fmt.Printf("ok   %-24s pps/core %11.0f >= static router-milled %11.0f (%+5.1f%%)\n",
					"router-milled-fused", fused.PpsPerCore, static.PpsPerCore,
					100*(fused.PpsPerCore-static.PpsPerCore)/static.PpsPerCore)
			}
		}
	}

	// Wall-clock trajectory: informational only.
	freshEx := map[string]benchEntry{}
	for _, e := range fresh.Exhibits {
		freshEx[e.ID] = e
	}
	for _, b := range base.Exhibits {
		if f, ok := freshEx[b.ID]; ok && b.WallMS > 0 {
			fmt.Printf("info %-24s wall %8.0f ms -> %8.0f ms (not gated)\n", b.ID, b.WallMS, f.WallMS)
		}
	}

	if failed {
		fmt.Println("benchcheck: datapath regression against baseline")
		os.Exit(1)
	}
	fmt.Println("benchcheck: within baseline")
}
