// Command packetmill is the pipeline CLI: read a Click configuration,
// optionally grind it through the mill's passes, pick a metadata model,
// run it on the simulated 100-GbE testbed, and report throughput, latency,
// and perf counters. With -emit-ir it prints the dispatch-level IR of the
// (optimized) build instead of running.
//
// Examples:
//
//	packetmill -config router.click -freq 2.3 -rate 100
//	packetmill -config router.click -mill -model x-change -freq 2.3
//	packetmill -builtin router -mill -mill-profile auto -freq 2.3
//	packetmill -builtin router -mill -emit-ir
//	packetmill -builtin forwarder -model overlaying -sweep-freq
//
// The -io flag selects the packet I/O backend:
//
//	-io sim   the simulated two-node testbed (default; all flags apply)
//	-io pcap  offline: read frames from -pcap-in (pcap/pcapng/native),
//	          push them through the build on the simulated machine, and
//	          write every departing frame to -pcap-out
//	-io wire  live: serve the build on real datagram sockets — frames
//	          arrive on -wire-rx (unix:PATH or udp:HOST:PORT) and leave
//	          via -wire-tx; exits after -wire-count packets or once the
//	          wire has been idle for -wire-idle
//
//	packetmill -config nat.click -mill -io pcap -pcap-in in.pcap -pcap-out out.pcap
//	packetmill -config nat.click -mill -io wire -wire-rx unix:/tmp/mill-rx.sock -wire-tx unix:/tmp/mill-tx.sock
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"strings"
	"time"

	"packetmill/internal/click"
	"packetmill/internal/core"
	_ "packetmill/internal/elements"
	"packetmill/internal/faults"
	"packetmill/internal/flowlog"
	"packetmill/internal/flowlog/diagnose"
	"packetmill/internal/layout"
	"packetmill/internal/mill"
	"packetmill/internal/nf"
	"packetmill/internal/nic"
	"packetmill/internal/overload"
	"packetmill/internal/simrand"
	"packetmill/internal/stats"
	"packetmill/internal/telemetry"
	"packetmill/internal/testbed"
	"packetmill/internal/trace"
	"packetmill/internal/trafficgen"
	"packetmill/internal/verify"
	"packetmill/internal/wire"
	"packetmill/internal/wire/pcapio"
)

func main() {
	var (
		configPath = flag.String("config", "", "Click configuration file")
		builtin    = flag.String("builtin", "", "built-in NF: forwarder|mirror|router|ids|nat|conntrack|workpackage")
		model      = flag.String("model", "copying", "metadata model: copying|overlaying|x-change")
		doMill     = flag.Bool("mill", false, "apply PacketMill source-code passes")
		millProf   = flag.String("mill-profile", "", `apply the profile-guided passes (hot layout, classifier compilation, element fusion) driven by this telemetry report JSON (from -report json or a /report snapshot); "auto" captures a fresh profile with a short run`)
		doReorder  = flag.Bool("reorder", false, "run the profile-guided metadata reordering pass")
		doPrune    = flag.Bool("prune", false, "run the profile-guided dead-field removal pass")
		repeats    = flag.Int("repeats", 1, "repeat the run N times with varied seeds, report the median (NPF style)")
		verifyRun  = flag.Bool("verify", false, "differentially verify this build against vanilla FastClick (byte-identical output)")
		emitIR     = flag.Bool("emit-ir", false, "print the dispatch-level IR and exit")
		freq       = flag.Float64("freq", 2.3, "core frequency (GHz)")
		rate       = flag.Float64("rate", 100, "offered load per NIC (Gbps)")
		packets    = flag.Int("packets", 50000, "frames to offer per NIC")
		size       = flag.Int("size", 0, "fixed frame size (0 = campus mix)")
		cores      = flag.Int("cores", 1, "DUT cores")
		nics       = flag.Int("nics", 1, "NICs")
		sweepFreq  = flag.Bool("sweep-freq", false, "sweep 1.2–3.0 GHz and print a table")
		seed       = flag.Uint64("seed", 1, "experiment seed")
		faultSpec  = flag.String("faults", "", `fault schedule (e.g. "drop p=0.01; flap at=1ms for=100us"), or "random" for a seeded random draw`)
		faultSeed  = flag.Uint64("faults-seed", 0, "fault engine seed (0 = derive from -seed)")
		reportFmt  = flag.String("report", "text", "report format: text|json (json enables telemetry and prints the full per-core/per-queue/per-element report)")

		traceOut    = flag.String("trace-out", "", "write a Chrome/Perfetto trace of sampled packets to this file (enables the flight recorder; also the stall-dump path)")
		traceSample = flag.Int("trace-sample", 64, "with -trace-out: trace one in N received packets")
		metricsAddr = flag.String("metrics", "", "-io wire: serve live Prometheus metrics on this address (e.g. :9100) at /metrics, full JSON report at /report, flow records at /flows")
		flowsOut    = flag.String("flows-out", "", "arm the flow log and write the run's conntrack-enriched flow records to this file as JSON lines, with a scenario diagnosis on the note stream")

		ioMode     = flag.String("io", "sim", "packet I/O backend: sim|wire|pcap")
		pcapIn     = flag.String("pcap-in", "", "-io pcap: input capture (pcap/pcapng/native trace)")
		pcapOut    = flag.String("pcap-out", "", "-io pcap: write departing frames to this capture")
		pcapRepeat = flag.Int("pcap-repeat", 1, "-io pcap: replay the input N times")
		wireRx     = flag.String("wire-rx", "", "-io wire: address to receive frames on (unix:PATH or udp:HOST:PORT)")
		wireTx     = flag.String("wire-tx", "", "-io wire: address to transmit frames to")
		wireIdle   = flag.Duration("wire-idle", 2*time.Second, "-io wire: exit after this long with no traffic (0 = never)")
		wireCount  = flag.Int("wire-count", 0, "-io wire: exit after this many packets (0 = unlimited)")

		trafficKind = flag.String("traffic", "campus", "offered traffic: campus, priority (campus with a 10% high-precedence share, TOS 0xE0 = class 7), churn (Zipf flow churn with TCP lifecycles), synflood (distinct half-opens), or storm (handshake waves separated by idle gaps)")
		ovlPolicy   = flag.String("overload-policy", "", "arm the overload control plane with this RX admission policy: none|tail-drop|red|priority")
		ovlHigh     = flag.Float64("overload-high", 0, "overload: high occupancy watermark, fraction of ring (0 = default 0.85)")
		ovlLow      = flag.Float64("overload-low", 0, "overload: low occupancy watermark (0 = default 0.35)")
		ovlLossless = flag.Bool("overload-lossless", false, "overload: lossless backpressure — pause RX instead of mid-graph drops")
		ovlDegrade  = flag.Float64("overload-degrade", 0, "overload: ring occupancy that leaves Healthy and arms the shedder (0 = default 0.5; set below the shedding equilibrium or the machine flaps)")
		ovlDwell    = flag.Duration("overload-dwell", 0, "overload: health-state dwell time before another transition (0 = default 50µs)")
	)
	flag.Parse()

	jsonReport := false
	switch strings.ToLower(*reportFmt) {
	case "text":
	case "json":
		jsonReport = true
	default:
		fatal(fmt.Errorf("unknown report format %q (want text or json)", *reportFmt))
	}
	// With -report json, stdout carries exactly one JSON document; pass
	// notes and fault banners move to stderr.
	note := func(format string, args ...any) {
		w := os.Stdout
		if jsonReport {
			w = os.Stderr
		}
		fmt.Fprintf(w, format, args...)
	}

	config, err := loadConfig(*configPath, *builtin)
	if err != nil {
		fatal(err)
	}

	p, err := core.Parse(config)
	if err != nil {
		fatal(err)
	}
	switch strings.ToLower(*model) {
	case "copying":
		p.Model = click.Copying
	case "overlaying":
		p.Model = click.Overlaying
	case "x-change", "xchange", "xchg":
		p.Model = click.XChange
	default:
		fatal(fmt.Errorf("unknown model %q", *model))
	}
	if *doMill {
		if err := p.Mill(); err != nil {
			fatal(err)
		}
	}

	base := testbed.Options{
		FreqGHz: *freq, RateGbps: *rate, Packets: *packets,
		FixedSize: *size, Cores: *cores, NICs: *nics, Seed: *seed,
		FaultSeed: *faultSeed,
		Telemetry: jsonReport,
	}
	if *traceOut != "" {
		base.Trace = trace.NewRecorder(trace.Config{SampleEvery: *traceSample, Seed: *seed})
		base.StallTracePath = *traceOut
	}
	if *flowsOut != "" {
		base.FlowLog = flowlog.New(flowlog.Config{})
	}
	switch strings.ToLower(*trafficKind) {
	case "campus", "":
	case "priority", "prio":
		base.Traffic = func(nicID int, cfg trafficgen.Config) trafficgen.Source {
			return trafficgen.NewPriorityMix(cfg, 0.1, 0xE0)
		}
	case "churn":
		base.Traffic = func(nicID int, cfg trafficgen.Config) trafficgen.Source {
			return trafficgen.NewChurn(trafficgen.ChurnConfig{
				Config: cfg, Concurrent: 2048, FlowPackets: 8,
			})
		}
	case "synflood", "syn-flood":
		base.Traffic = func(nicID int, cfg trafficgen.Config) trafficgen.Source {
			return trafficgen.NewSYNFlood(cfg)
		}
	case "storm", "expiry-storm":
		base.Traffic = func(nicID int, cfg trafficgen.Config) trafficgen.Source {
			return trafficgen.NewExpiryStorm(cfg, 512, 1e7)
		}
	default:
		fatal(fmt.Errorf("unknown -traffic %q (want campus, priority, churn, synflood, or storm)", *trafficKind))
	}
	if *ovlPolicy != "" || *ovlLossless {
		policy, err := overload.ParsePolicy(*ovlPolicy)
		if err != nil {
			fatal(err)
		}
		base.Overload = &overload.Config{
			Policy:    policy,
			HighWater: *ovlHigh,
			LowWater:  *ovlLow,
			Lossless:  *ovlLossless,
			Health: overload.HealthConfig{
				DegradeOcc: *ovlDegrade,
				DwellNS:    float64(ovlDwell.Nanoseconds()),
			},
		}
	}
	if *faultSpec != "" {
		sched, err := parseFaults(*faultSpec, base)
		if err != nil {
			fatal(err)
		}
		base.Faults = sched
		note("; faults: %s\n", sched)
	}

	if *millProf != "" {
		var prof *mill.Profile
		if strings.ToLower(*millProf) == "auto" {
			po := base
			po.Packets = *packets / 10
			if prof, err = p.CaptureProfile(po); err != nil {
				fatal(err)
			}
		} else {
			raw, err := os.ReadFile(*millProf)
			if err != nil {
				fatal(err)
			}
			if prof, err = mill.LoadProfile(raw); err != nil {
				fatal(err)
			}
		}
		if err := p.MillProfileGuided(prof); err != nil {
			fatal(err)
		}
	}
	if *doPrune {
		prof := base
		prof.Packets = *packets / 10
		if err := p.PruneMetadata(prof); err != nil {
			fatal(err)
		}
	}
	if *doReorder {
		prof := base
		prof.Packets = *packets / 10
		if err := p.ReorderMetadata(prof, layout.ByAccessCount); err != nil {
			fatal(err)
		}
	}

	if *emitIR {
		fmt.Print(p.IR().Dump())
		return
	}

	for _, n := range p.Notes() {
		note("; pass: %s\n", n)
	}

	switch strings.ToLower(*ioMode) {
	case "sim":
	case "wire":
		runWire(p, base, *wireRx, *wireTx, *metricsAddr, *wireIdle, *wireCount, *flowsOut, note)
		writeTrace(base.Trace, *traceOut, note)
		return
	case "pcap":
		runPcap(p, base, *pcapIn, *pcapOut, *pcapRepeat, jsonReport, *configPath, *builtin, *flowsOut, note)
		writeTrace(base.Trace, *traceOut, note)
		return
	default:
		fatal(fmt.Errorf("unknown -io backend %q (want sim, wire, or pcap)", *ioMode))
	}

	if *verifyRun {
		vanilla, err := core.Parse(config)
		if err != nil {
			fatal(err)
		}
		vanilla.Model = click.Copying
		vo := base
		vo.Model = click.Copying
		vo.RateGbps = base.RateGbps / 4 // headroom: compare behaviour, not congestion
		bo := pipelineOptions(p, base)
		bo.RateGbps = vo.RateGbps
		rep, err := verify.DifferentialGraphs(vanilla.Plan.Graph, p.Plan.Graph, vo, bo)
		if err != nil {
			fatal(err)
		}
		note("verification: %s\n", rep)
		if !rep.Equivalent() {
			os.Exit(1)
		}
	}

	if *sweepFreq {
		fmt.Println("freq_ghz\tthroughput_gbps\tmpps\tmedian_us\tp99_us")
		for f := 1.2; f <= 3.01; f += 0.2 {
			o := base
			o.FreqGHz = f
			o.Telemetry = false // the sweep prints a table, not a report
			res, err := p.Run(o)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("%.1f\t%.1f\t%.2f\t%.1f\t%.1f\n", f, res.Gbps(), res.Mpps(),
				stats.MicrosFromNS(res.Latency.Median()), stats.MicrosFromNS(res.Latency.P99()))
		}
		return
	}

	if *repeats > 1 {
		res, spread, err := testbed.RunRepeatedGraph(p.Plan.Graph, pipelineOptions(p, base), *repeats)
		if err != nil {
			fatal(err)
		}
		if jsonReport {
			emitJSON(res, configName(*configPath, *builtin))
			note("; spread: %d runs, throughput %.2f–%.2f Gbps\n",
				*repeats, spread.MinGbps, spread.MaxGbps)
		} else {
			report(res)
			fmt.Printf("spread:         %d runs, throughput %.2f–%.2f Gbps\n",
				*repeats, spread.MinGbps, spread.MaxGbps)
		}
		writeTrace(base.Trace, *traceOut, note)
		writeFlows(res.Flows, *flowsOut, note)
		return
	}
	res, err := p.Run(base)
	if err != nil {
		fatal(err)
	}
	if jsonReport {
		emitJSON(res, configName(*configPath, *builtin))
	} else {
		report(res)
	}
	writeTrace(base.Trace, *traceOut, note)
	writeFlows(res.Flows, *flowsOut, note)
}

// writeFlows dumps a run's flow records as JSON lines and prints the
// scenario diagnosis. No-op unless -flows-out armed the flow log.
func writeFlows(recs []flowlog.Record, path string, note func(string, ...any)) {
	if path == "" {
		return
	}
	if err := os.WriteFile(path, flowlog.JSONL(recs), 0o644); err != nil {
		fatal(err)
	}
	s := flowlog.Summarize(recs)
	note("; flows: %d records (%d tx-side pkts, %d drop-side pkts, %d unattributed) -> %s\n",
		s.Records, s.TxSidePackets, s.DropSidePackets, s.Unattributed, path)
	findings := diagnose.Run(recs, diagnose.Defaults())
	if len(findings) == 0 {
		note("; diagnosis: no scenario detected\n")
		return
	}
	for _, f := range findings {
		note("; diagnosis: %s — %s\n", f.Scenario, f.Summary)
	}
}

// writeTrace dumps the flight recorder as Chrome trace-event JSON —
// loadable in https://ui.perfetto.dev or chrome://tracing. No-op unless
// -trace-out enabled the recorder.
func writeTrace(rec *trace.Recorder, path string, note func(string, ...any)) {
	if rec == nil || path == "" {
		return
	}
	if err := os.WriteFile(path, rec.ChromeJSON(), 0o644); err != nil {
		fatal(err)
	}
	var sampled, lost uint64
	for _, ct := range rec.Cores() {
		sampled += ct.Sampled()
		lost += ct.Lost()
	}
	note("; trace: %d packets sampled (%d ring-evicted events), wrote %s — open in ui.perfetto.dev\n",
		sampled, lost, path)
}

// runWire serves the build on live datagram sockets: the -io wire mode.
func runWire(p *core.Pipeline, base testbed.Options, rxAddr, txAddr, metricsAddr string,
	idle time.Duration, maxPackets int, flowsOut string, note func(string, ...any)) {
	if rxAddr == "" && txAddr == "" {
		fatal(fmt.Errorf("-io wire needs -wire-rx and/or -wire-tx"))
	}
	if metricsAddr != "" {
		ms, err := trace.NewMetricsServer(metricsAddr)
		if err != nil {
			fatal(err)
		}
		defer ms.Close()
		base.Metrics = ms
		base.Telemetry = true // /report serves the full JSON report
		note("; metrics: http://%s/metrics (Prometheus), /report (JSON), /flows (JSON lines)\n", ms.Addr())
	}
	var rxConn, txConn net.Conn
	var err error
	if rxAddr != "" {
		if rxConn, err = wire.Listen(rxAddr); err != nil {
			fatal(err)
		}
	}
	if txAddr != "" {
		if txConn, err = wire.Dial(txAddr); err != nil {
			fatal(err)
		}
	}
	o := pipelineOptions(p, base)
	var devsPerCore [][]nic.Port
	var fanout *wire.Fanout
	if base.Cores > 1 {
		// N run-to-completion cores behind one socket: a software-RSS
		// fanout demuxes the RX stream by flow hash into per-core queues
		// (TX is interleaved onto the shared socket).
		if rxConn == nil {
			fatal(fmt.Errorf("-cores %d with -io wire needs -wire-rx (the fanout demuxes the RX stream)", base.Cores))
		}
		fanout = wire.NewFanout(wire.Config{Name: "wire0"}, base.Cores, rxConn, txConn)
		defer fanout.Close()
		for c := 0; c < base.Cores; c++ {
			devsPerCore = append(devsPerCore, []nic.Port{fanout.Queue(c)})
		}
		note("; serving on rx=%s tx=%s (model %s, %d cores, %d-bucket fanout)\n",
			rxAddr, txAddr, o.Model, base.Cores, wire.FanoutBuckets)
	} else {
		dev := wire.NewPort(wire.Config{Name: "wire0"}, rxConn, txConn)
		defer dev.Close()
		devsPerCore = [][]nic.Port{{dev}}
		note("; serving on rx=%s tx=%s (model %s)\n", rxAddr, txAddr, o.Model)
	}
	d, st, err := testbed.ServeWireGraphPerCore(context.Background(), p.Plan.Graph, o,
		devsPerCore, idle, uint64(maxPackets))
	if err != nil {
		fatal(err)
	}
	fmt.Printf("wire session:   %d scheduling rounds, %d packets moved\n", st.Steps, st.Packets)
	var arx nic.RXQueueStats
	var atx nic.TXQueueStats
	for c, devs := range devsPerCore {
		rxs, txs := devs[0].RXStats(), devs[0].TXStats()
		if len(devsPerCore) > 1 {
			fmt.Printf("core %d rx:      %d frames (%d bytes), drops: nobuf=%d full=%d runt=%d\n",
				c, rxs.Delivered, rxs.Bytes, rxs.DropNoBuf, rxs.DropFull, rxs.DropRunt)
			fmt.Printf("core %d tx:      %d frames (%d bytes), drops: full=%d transient=%d oversize=%d\n",
				c, txs.Sent, txs.Bytes, txs.DropFull, txs.DropTransient, txs.DropOversize)
		}
		arx.Delivered += rxs.Delivered
		arx.Bytes += rxs.Bytes
		arx.DropNoBuf += rxs.DropNoBuf
		arx.DropFull += rxs.DropFull
		arx.DropRunt += rxs.DropRunt
		atx.Sent += txs.Sent
		atx.Bytes += txs.Bytes
		atx.DropFull += txs.DropFull
		atx.DropTransient += txs.DropTransient
		atx.DropOversize += txs.DropOversize
	}
	fmt.Printf("rx:             %d frames (%d bytes), drops: nobuf=%d full=%d runt=%d\n",
		arx.Delivered, arx.Bytes, arx.DropNoBuf, arx.DropFull, arx.DropRunt)
	fmt.Printf("tx:             %d frames (%d bytes), drops: full=%d transient=%d oversize=%d\n",
		atx.Sent, atx.Bytes, atx.DropFull, atx.DropTransient, atx.DropOversize)
	if fanout != nil {
		fmt.Printf("fanout:         %d bucket migrations, %d socket reopens\n",
			fanout.Rebalances(), fanout.Reopens())
	}
	if err := d.Audit(); err != nil {
		fatal(err)
	}
	writeFlows(d.WireFlowRecords(), flowsOut, note)
}

// runPcap mills a capture offline: frames come from a file, traverse the
// build on the simulated machine, and every departing frame is written
// to the output capture. This is the -io pcap mode.
func runPcap(p *core.Pipeline, base testbed.Options, in, out string,
	repeat int, jsonReport bool, configPath, builtin, flowsOut string,
	note func(string, ...any)) {
	if in == "" {
		fatal(fmt.Errorf("-io pcap needs -pcap-in FILE"))
	}
	f, err := os.Open(in)
	if err != nil {
		fatal(err)
	}
	tr, err := trafficgen.ReadAnyTrace(f)
	f.Close()
	if err != nil {
		fatal(err)
	}
	if tr.Len() == 0 {
		fatal(fmt.Errorf("%s holds no frames", in))
	}

	var w *pcapio.Writer
	var outFile *os.File
	if out != "" {
		if outFile, err = os.Create(out); err != nil {
			fatal(err)
		}
		wo := pcapio.WriterOptions{Format: pcapio.FormatPcap, Nanosecond: true}
		if strings.HasSuffix(out, ".pcapng") {
			wo.Format = pcapio.FormatPcapNG
		}
		if w, err = pcapio.NewWriter(outFile, wo); err != nil {
			fatal(err)
		}
	}

	o := base
	o.Packets = tr.Len() * repeat
	o.Traffic = func(int, trafficgen.Config) trafficgen.Source { return tr.Replay(repeat) }
	if w != nil {
		o.Tap = func(frame []byte, departNS float64) {
			if err := w.WriteFrame(frame, int64(departNS)); err != nil {
				fatal(err)
			}
		}
	}
	res, err := p.Run(o)
	if err != nil {
		fatal(err)
	}
	if w != nil {
		if err := w.Flush(); err != nil {
			fatal(err)
		}
		if err := outFile.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "; wrote %d frames to %s\n", w.Frames(), out)
	}
	writeFlows(res.Flows, flowsOut, note)
	if jsonReport {
		emitJSON(res, configName(configPath, builtin))
		return
	}
	report(res)
}

// configName labels the run for the JSON report's config echo.
func configName(path, builtin string) string {
	if path != "" {
		return path
	}
	return "builtin:" + strings.ToLower(builtin)
}

// emitJSON prints the run's telemetry report as the process's single
// stdout document.
func emitJSON(res *testbed.Result, config string) {
	rep := res.Telemetry
	if rep == nil {
		fatal(fmt.Errorf("run produced no telemetry report"))
	}
	rep.Config.Config = config
	raw, err := rep.JSON()
	if err != nil {
		fatal(err)
	}
	fmt.Println(string(raw))
}

// pipelineOptions folds the pipeline's plan into testbed options the same
// way Pipeline.Run does (kept here to avoid exporting the helper).
func pipelineOptions(p *core.Pipeline, o testbed.Options) testbed.Options {
	o.Model = p.Model
	o.Opt = p.Plan.Opt
	if p.Plan.MetaLayout != nil {
		o.MetaLayout = p.Plan.MetaLayout
	}
	return o
}

// parseFaults reads -faults: a literal schedule, or "random" for a
// seeded draw scaled to the run's rough duration.
func parseFaults(spec string, o testbed.Options) (*faults.Schedule, error) {
	if strings.ToLower(spec) != "random" {
		return faults.Parse(spec)
	}
	seed := o.FaultSeed
	if seed == 0 {
		seed = o.Seed ^ 0x5eedfa17
	}
	avg := 981.0 // campus-mix mean frame size
	if o.FixedSize > 0 {
		avg = float64(o.FixedSize)
	}
	durationNS := float64(o.Packets) * (avg + 20) * 8 / o.RateGbps
	return faults.Random(simrand.New(seed), durationNS), nil
}

func loadConfig(path, builtin string) (string, error) {
	if path != "" {
		b, err := os.ReadFile(path)
		if err != nil {
			return "", err
		}
		return string(b), nil
	}
	switch strings.ToLower(builtin) {
	case "forwarder":
		return nf.Forwarder(0, 32), nil
	case "mirror":
		return nf.Mirror(0, 32), nil
	case "router":
		return nf.Router(32), nil
	case "ids":
		return nf.IDSRouter(32), nil
	case "nat":
		return nf.NATRouter(32), nil
	case "conntrack":
		return nf.ConnTrackForwarder(32, 65536), nil
	case "workpackage":
		return nf.WorkPackageForwarder(32, 4, 1, 4), nil
	case "":
		return "", fmt.Errorf("need -config FILE or -builtin NAME")
	default:
		return "", fmt.Errorf("unknown builtin %q", builtin)
	}
}

func report(res *testbed.Result) {
	fmt.Printf("throughput:     %.2f Gbps (%.3f Mpps)\n", res.Gbps(), res.Mpps())
	fmt.Printf("latency:        median %.1f µs, p99 %.1f µs, max %.1f µs\n",
		stats.MicrosFromNS(res.Latency.Median()),
		stats.MicrosFromNS(res.Latency.P99()),
		stats.MicrosFromNS(res.Latency.Max()))
	fmt.Printf("offered/lost:   %d offered, %d on wire, %d dropped\n",
		res.Offered, res.TxWire, res.Dropped)
	if res.Dropped > 0 {
		fmt.Printf("drop reasons:   %s\n", res.DropsByReason.String())
	}
	if fs := res.FaultStats; fs != nil {
		fmt.Printf("injected:       wire-drops=%d link-down=%d corruptions=%d truncations=%d\n",
			fs.WireDrops, fs.LinkDownDrops, fs.Corruptions, fs.Truncations)
	}
	for coreID, rt := range res.Routers {
		if rt == nil {
			continue
		}
		for _, inst := range rt.Instances {
			fr, ok := inst.El.(telemetry.FlowReporter)
			if !ok {
				continue
			}
			ct := fr.FlowReport()
			var evicted uint64
			for _, v := range ct.Evictions {
				evicted += v
			}
			fmt.Printf("conntrack[%d]:   %s: %d/%d flows, %d inserted, %d expired, %d evicted, %d refused\n",
				coreID, inst.Name, ct.FlowTableEntries, ct.Capacity,
				ct.Insertions, ct.Expirations, evicted, ct.RefusedFull+ct.RefusedInvalid)
			if ct.PortsInUse > 0 || ct.PortsRecycled > 0 {
				fmt.Printf("nat ports[%d]:   %s: %d in use, %d recycled\n",
					coreID, inst.Name, ct.PortsInUse, ct.PortsRecycled)
			}
		}
	}
	for core, st := range res.Overload {
		fmt.Printf("overload[%d]:    policy=%s state=%s transitions=%d admits=%d sheds=%d pauses=%d paused=%.1fµs\n",
			core, st.Policy, st.State, st.Transitions, st.AdmitOK, st.Sheds,
			st.Pauses, stats.MicrosFromNS(st.PausedNS))
	}
	for class, h := range res.ClassLat {
		if h == nil || h.Count() == 0 {
			continue
		}
		fmt.Printf("class %d:        %d frames, p50 %.1f µs, p99 %.1f µs\n",
			class, h.Count(), stats.MicrosFromNS(h.Quantile(0.5)), stats.MicrosFromNS(h.Quantile(0.99)))
	}
	c := res.Counters
	perPkt := func(v float64) float64 {
		if res.Packets == 0 {
			return 0
		}
		return v / float64(res.Packets)
	}
	fmt.Printf("perf:           IPC %.2f, %.0f instr/pkt, %.2f LLC-loads/pkt, %.3f LLC-misses/pkt, %.3f TLB-walks/pkt\n",
		c.IPC(), perPkt(float64(c.Instructions)), perPkt(float64(c.LLCLoads)),
		perPkt(float64(c.LLCLoadMisses)), perPkt(float64(c.TLBMisses)))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "packetmill:", err)
	os.Exit(1)
}
