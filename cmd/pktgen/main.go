// Command pktgen inspects the traffic generators: it synthesizes a trace
// and prints its statistics (size histogram, protocol mix, flow skew,
// offered rate) — handy for validating workloads before running
// experiments.
//
//	pktgen -trace campus -count 100000
//	pktgen -trace fixed -size 64 -rate 40
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"

	"packetmill/internal/netpkt"
	"packetmill/internal/trafficgen"
)

func main() {
	var (
		trace   = flag.String("trace", "campus", "trace kind: campus|fixed")
		size    = flag.Int("size", 64, "frame size for -trace fixed")
		rate    = flag.Float64("rate", 100, "offered wire rate (Gbps)")
		count   = flag.Int("count", 100000, "frames to generate")
		flows   = flag.Int("flows", 1024, "distinct flows")
		seed    = flag.Uint64("seed", 1, "generator seed")
		write   = flag.String("write", "", "record the trace to FILE and exit")
		read    = flag.String("read", "", "analyze a recorded trace FILE instead of generating")
		repeats = flag.Int("repeat", 1, "replay the -read trace N times")
		asJSON  = flag.Bool("json", false, "emit the trace statistics as JSON")
	)
	flag.Parse()

	cfg := trafficgen.Config{Seed: *seed, Flows: *flows, RateGbps: *rate, Count: *count}
	var src trafficgen.Source
	switch {
	case *read != "":
		f, err := os.Open(*read)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pktgen:", err)
			os.Exit(1)
		}
		tr, err := trafficgen.ReadTrace(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "pktgen:", err)
			os.Exit(1)
		}
		src = tr.Replay(*repeats)
	case *trace == "campus":
		src = trafficgen.NewCampus(cfg)
	case *trace == "fixed":
		src = trafficgen.NewFixedSize(cfg, *size)
	default:
		fmt.Fprintf(os.Stderr, "pktgen: unknown trace %q\n", *trace)
		os.Exit(1)
	}

	if *write != "" {
		tr := trafficgen.Record(src, 0)
		f, err := os.Create(*write)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pktgen:", err)
			os.Exit(1)
		}
		if _, err := tr.WriteTo(f); err != nil {
			fmt.Fprintln(os.Stderr, "pktgen:", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "pktgen:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d frames (%d bytes payload) to %s\n", tr.Len(), tr.Bytes(), *write)
		return
	}

	sizes := map[int]int{}
	protos := map[string]int{}
	flowSet := map[string]int{}
	var bytes, n uint64
	var lastNS float64
	for {
		frame, ns, ok := src.Next()
		if !ok {
			break
		}
		n++
		bytes += uint64(len(frame))
		lastNS = ns
		sizes[len(frame)]++
		eh, err := netpkt.ParseEther(frame)
		if err != nil {
			continue
		}
		switch eh.EtherType {
		case netpkt.EtherTypeARP:
			protos["arp"]++
		case netpkt.EtherTypeIPv4:
			h, _, err := netpkt.ParseIPv4Header(frame[netpkt.EtherHdrLen:])
			if err != nil {
				protos["bad-ip"]++
				continue
			}
			switch h.Protocol {
			case netpkt.ProtoTCP:
				protos["tcp"]++
			case netpkt.ProtoUDP:
				protos["udp"]++
			case netpkt.ProtoICMP:
				protos["icmp"]++
			default:
				protos["other-ip"]++
			}
			flowSet[h.Src.String()+">"+h.Dst.String()]++
		}
	}

	// Flow skew: top-5 share.
	var counts []int
	for _, c := range flowSet {
		counts = append(counts, c)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(counts)))
	top := 0
	for i := 0; i < len(counts) && i < 5; i++ {
		top += counts[i]
	}

	if *asJSON {
		doc := struct {
			Frames     uint64         `json:"frames"`
			Bytes      uint64         `json:"bytes"`
			MeanSize   float64        `json:"mean_size"`
			Gbps       float64        `json:"gbps,omitempty"`
			DurationMS float64        `json:"duration_ms,omitempty"`
			Sizes      map[string]int `json:"sizes"`
			Protocols  map[string]int `json:"protocols"`
			Flows      int            `json:"flows"`
			Top5Share  float64        `json:"top5_share"`
		}{
			Frames: n, Bytes: bytes, MeanSize: float64(bytes) / float64(n),
			Sizes: map[string]int{}, Protocols: protos,
			Flows: len(flowSet), Top5Share: float64(top) / float64(n),
		}
		if lastNS > 0 {
			doc.Gbps = float64(bytes) * 8 / lastNS
			doc.DurationMS = lastNS / 1e6
		}
		for k, v := range sizes {
			doc.Sizes[fmt.Sprint(k)] = v
		}
		raw, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "pktgen:", err)
			os.Exit(1)
		}
		fmt.Println(string(raw))
		return
	}

	fmt.Printf("frames:      %d (%.1f MB)\n", n, float64(bytes)/1e6)
	fmt.Printf("mean size:   %.1f B\n", float64(bytes)/float64(n))
	if lastNS > 0 {
		fmt.Printf("offered:     %.1f Gbps goodput over %.3f ms\n",
			float64(bytes)*8/lastNS, lastNS/1e6)
	}
	fmt.Println("sizes:")
	var ks []int
	for k := range sizes {
		ks = append(ks, k)
	}
	sort.Ints(ks)
	for _, k := range ks {
		fmt.Printf("  %5d B  %6.2f%%\n", k, float64(sizes[k])*100/float64(n))
	}
	fmt.Println("protocols:")
	var ps []string
	for p := range protos {
		ps = append(ps, p)
	}
	sort.Strings(ps)
	for _, p := range ps {
		fmt.Printf("  %-8s %6.2f%%\n", p, float64(protos[p])*100/float64(n))
	}
	fmt.Printf("flows:       %d distinct, top-5 carry %.1f%%\n",
		len(flowSet), float64(top)*100/float64(n))
}
