// Command pktgen is the traffic side of the toolchain: it synthesizes
// traces, analyzes recorded ones, converts between the native trace
// format and pcap/pcapng, and — with a live wire — replays captures onto
// a socket and captures what comes back.
//
//	pktgen -trace campus -count 100000
//	pktgen -trace fixed -size 64 -rate 40
//	pktgen -trace campus -count 2000 -write input.pcap
//	pktgen -read input.pcap -json
//	pktgen -read input.pcap -flows
//	pktgen -replay input.pcap -to unix:/tmp/mill-rx.sock -pps 50000
//	pktgen -capture out.pcap -on unix:/tmp/mill-tx.sock -idle 2s
//	pktgen -compare out.pcap expected.pcap
//	pktgen -replay in.pcap -to unix:/tmp/mill-rx.sock -record sent.pcap -epoch
//	pktgen -compare-latency sent.pcap received.pcap
//
// File formats follow the extension: .pcap and .pcapng use the capture
// codecs in internal/wire (nanosecond timestamps); anything else is the
// native PMTR trace format. -read and -compare sniff the magic, so they
// accept any of the three regardless of name.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"sort"
	"strings"
	"time"

	"hash/fnv"

	"packetmill/internal/conntrack"
	"packetmill/internal/flowlog"
	"packetmill/internal/netpkt"
	ptrace "packetmill/internal/trace"
	"packetmill/internal/trafficgen"
	"packetmill/internal/wire"
	"packetmill/internal/wire/pcapio"
)

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pktgen:", err)
	os.Exit(1)
}

// writeTraceFile writes tr in the format the extension names.
func writeTraceFile(tr *trafficgen.Trace, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	switch {
	case strings.HasSuffix(path, ".pcapng"):
		err = tr.ToPcap(f, pcapio.WriterOptions{Format: pcapio.FormatPcapNG, Nanosecond: true})
	case strings.HasSuffix(path, ".pcap"):
		err = tr.ToPcap(f, pcapio.WriterOptions{Format: pcapio.FormatPcap, Nanosecond: true})
	default:
		_, err = tr.WriteTo(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// readTraceFile reads a native or pcap/pcapng trace, sniffing the magic.
func readTraceFile(path string) (*trafficgen.Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return trafficgen.ReadAnyTrace(f)
}

func main() {
	var (
		trace = flag.String("trace", "campus", "trace kind: campus|fixed|priority|burst|flood (the last three are the overload scenarios)")
		size  = flag.Int("size", 64, "frame size for -trace fixed")

		hiShare     = flag.Float64("hi-share", 0.1, "-trace priority: share of frames (and rate) in the high-precedence class")
		hiTOS       = flag.Uint("hi-tos", 0xE0, "-trace priority: IPv4 TOS byte of the high class (0xE0 = class 7, shed last)")
		burstN      = flag.Int("burst-n", 32, "-trace burst: frames per on/off train")
		burstGap    = flag.Duration("burst-gap", 10*time.Microsecond, "-trace burst: silence between trains")
		floodFactor = flag.Float64("flood-factor", 4, "-trace flood: pacing compression (4 = offer 4x the configured rate)")
		rate        = flag.Float64("rate", 100, "offered wire rate (Gbps)")
		count       = flag.Int("count", 100000, "frames to generate (or to capture with -capture)")
		flowCount   = flag.Int("flow-count", 1024, "distinct flows to generate")
		seed        = flag.Uint64("seed", 1, "generator seed")
		write       = flag.String("write", "", "record the trace to FILE (.pcap/.pcapng/native) and exit")
		read        = flag.String("read", "", "analyze a recorded trace FILE instead of generating")
		repeats     = flag.Int("repeat", 1, "replay the -read trace N times")
		flowsMode   = flag.Bool("flows", false, "summarize per-flow packet/byte/duration stats instead of the size/protocol breakdown")
		asJSON      = flag.Bool("json", false, "emit results as JSON")

		replay     = flag.String("replay", "", "replay trace FILE onto the wire address given by -to")
		to         = flag.String("to", "", "wire address to transmit to (unix:PATH or udp:HOST:PORT)")
		pps        = flag.Float64("pps", 0, "replay pacing in packets/s (0 = as fast as possible)")
		record     = flag.String("record", "", "with -replay: also write the frames with their actual send times to FILE (the SENT side of -compare-latency)")
		epoch      = flag.Bool("epoch", false, "timestamp -capture and -replay -record frames with absolute wall-clock ns, so two pktgen processes on one host share a time base")
		capture    = flag.String("capture", "", "capture frames from -on into FILE")
		on         = flag.String("on", "", "wire address to listen on (unix:PATH or udp:HOST:PORT)")
		idle       = flag.Duration("idle", 2*time.Second, "stop a capture after this long without frames")
		compare    = flag.Bool("compare", false, "compare two capture files (args: FILE FILE), ignoring timestamps")
		compareLat = flag.Bool("compare-latency", false, "pair the frames of two captures (args: SENT RECEIVED) by payload hash and report the one-way latency distribution (captures must share a time base)")
	)
	flag.Parse()

	switch {
	case *compareLat:
		runCompareLatency(flag.Arg(0), flag.Arg(1), *asJSON)
		return
	case *compare:
		runCompare(flag.Arg(0), flag.Arg(1))
		return
	case *replay != "":
		runReplay(*replay, *to, *pps, *repeats, *asJSON, *record, *epoch)
		return
	case *capture != "":
		runCapture(*capture, *on, *count, *idle, *asJSON, *epoch)
		return
	}

	cfg := trafficgen.Config{Seed: *seed, Flows: *flowCount, RateGbps: *rate, Count: *count}
	var src trafficgen.Source
	switch {
	case *read != "":
		tr, err := readTraceFile(*read)
		if err != nil {
			fatal(err)
		}
		src = tr.Replay(*repeats)
	case *trace == "campus":
		src = trafficgen.NewCampus(cfg)
	case *trace == "fixed":
		src = trafficgen.NewFixedSize(cfg, *size)
	case *trace == "priority":
		src = trafficgen.NewPriorityMix(cfg, *hiShare, uint8(*hiTOS))
	case *trace == "burst":
		src = trafficgen.NewBurst(trafficgen.NewCampus(cfg), *burstN, float64(burstGap.Nanoseconds()))
	case *trace == "flood":
		src = trafficgen.NewFlood(trafficgen.NewCampus(cfg), *floodFactor)
	default:
		fatal(fmt.Errorf("unknown trace %q", *trace))
	}

	if *write != "" {
		tr := trafficgen.Record(src, 0)
		if err := writeTraceFile(tr, *write); err != nil {
			fatal(err)
		}
		if *asJSON {
			printJSON(map[string]any{
				"file": *write, "frames": tr.Len(),
				"bytes": tr.Bytes(), "duration_ns": tr.Duration(),
			})
		} else {
			fmt.Printf("wrote %d frames (%d bytes payload, %.3f ms) to %s\n",
				tr.Len(), tr.Bytes(), tr.Duration()/1e6, *write)
		}
		return
	}

	if *flowsMode {
		analyzeFlows(src, *asJSON)
		return
	}
	analyze(src, *asJSON)
}

func printJSON(doc any) {
	raw, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fatal(err)
	}
	fmt.Println(string(raw))
}

// runReplay pushes every frame of a trace file onto a wire address,
// optionally recording what it sent with the actual send timestamps so
// -compare-latency can pair against the far side's capture.
func runReplay(path, to string, pps float64, repeats int, asJSON bool,
	record string, epoch bool) {
	if to == "" {
		fatal(fmt.Errorf("-replay needs -to ADDR"))
	}
	tr, err := readTraceFile(path)
	if err != nil {
		fatal(err)
	}
	conn, err := wire.Dial(to)
	if err != nil {
		fatal(err)
	}
	defer conn.Close()

	var gap time.Duration
	if pps > 0 {
		gap = time.Duration(float64(time.Second) / pps)
	}
	src := tr.Replay(repeats)
	start := time.Now()
	stamp := func() float64 {
		if epoch {
			return float64(time.Now().UnixNano())
		}
		return float64(time.Since(start).Nanoseconds())
	}
	var rec captureSource
	var frames, sent uint64
	for {
		frame, _, ok := src.Next()
		if !ok {
			break
		}
		frames++
		if _, err := conn.Write(frame); err != nil {
			fatal(fmt.Errorf("frame %d: %w", frames, err))
		}
		if record != "" {
			rec.frames = append(rec.frames, append([]byte(nil), frame...))
			rec.ns = append(rec.ns, stamp())
		}
		sent += uint64(len(frame))
		if gap > 0 {
			time.Sleep(gap)
		}
	}
	dur := time.Since(start)
	if record != "" {
		if err := writeTraceFile(trafficgen.Record(&rec, 0), record); err != nil {
			fatal(err)
		}
	}
	if asJSON {
		printJSON(map[string]any{
			"file": path, "to": to, "frames": frames, "bytes": sent,
			"duration_ns": dur.Nanoseconds(),
			"gbps":        float64(sent) * 8 / float64(dur.Nanoseconds()),
		})
	} else {
		fmt.Printf("replayed %d frames (%d bytes) to %s in %v (%.3f Gbps)\n",
			frames, sent, to, dur, float64(sent)*8/float64(dur.Nanoseconds()))
	}
}

// runCapture records frames arriving on a wire address until the count
// is reached or the line goes idle, then writes them as a trace file.
func runCapture(path, on string, count int, idle time.Duration, asJSON, epoch bool) {
	if on == "" {
		fatal(fmt.Errorf("-capture needs -on ADDR"))
	}
	conn, err := wire.Listen(on)
	if err != nil {
		fatal(err)
	}
	defer conn.Close()

	var rec captureSource
	buf := make([]byte, 1<<16)
	start := time.Now()
	stamp := func() float64 {
		if epoch {
			return float64(time.Now().UnixNano())
		}
		return float64(time.Since(start).Nanoseconds())
	}
	for count <= 0 || len(rec.frames) < count {
		if idle > 0 {
			conn.SetReadDeadline(time.Now().Add(idle))
		}
		n, err := conn.Read(buf)
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				break // the wire went quiet
			}
			if err == io.EOF {
				break
			}
			fatal(err)
		}
		rec.frames = append(rec.frames, append([]byte(nil), buf[:n]...))
		rec.ns = append(rec.ns, stamp())
	}
	tr := trafficgen.Record(&rec, 0)
	if err := writeTraceFile(tr, path); err != nil {
		fatal(err)
	}
	if asJSON {
		printJSON(map[string]any{
			"file": path, "on": on, "frames": tr.Len(),
			"bytes": tr.Bytes(), "duration_ns": tr.Duration(),
		})
	} else {
		fmt.Printf("captured %d frames (%d bytes, %.3f ms) from %s to %s\n",
			tr.Len(), tr.Bytes(), tr.Duration()/1e6, on, path)
	}
}

// captureSource replays recorded frames as a trafficgen.Source so
// Record can fold them into a Trace.
type captureSource struct {
	frames [][]byte
	ns     []float64
	idx    int
}

func (c *captureSource) Next() ([]byte, float64, bool) {
	if c.idx >= len(c.frames) {
		return nil, 0, false
	}
	f, ts := c.frames[c.idx], c.ns[c.idx]
	c.idx++
	return f, ts, true
}

func (c *captureSource) Remaining() int { return len(c.frames) - c.idx }

// runCompare diffs two capture files frame by frame, ignoring
// timestamps — a replayed-and-recaptured trace keeps its bytes but not
// its clock.
func runCompare(pathA, pathB string) {
	if pathA == "" || pathB == "" {
		fatal(fmt.Errorf("-compare needs two file arguments"))
	}
	a, err := readTraceFile(pathA)
	if err != nil {
		fatal(fmt.Errorf("%s: %w", pathA, err))
	}
	b, err := readTraceFile(pathB)
	if err != nil {
		fatal(fmt.Errorf("%s: %w", pathB, err))
	}
	srcA, srcB := a.Replay(1), b.Replay(1)
	idx := 0
	for {
		fa, _, okA := srcA.Next()
		fb, _, okB := srcB.Next()
		if !okA || !okB {
			if okA != okB {
				fmt.Fprintf(os.Stderr, "pktgen: %s has %d frames, %s has %d\n",
					pathA, a.Len(), pathB, b.Len())
				os.Exit(1)
			}
			break
		}
		if !bytes.Equal(fa, fb) {
			fmt.Fprintf(os.Stderr, "pktgen: frame %d differs (%d vs %d bytes)\n",
				idx, len(fa), len(fb))
			os.Exit(1)
		}
		idx++
	}
	fmt.Printf("captures match: %d frames, %d bytes\n", a.Len(), a.Bytes())
}

// payloadKey hashes the part of a frame a forwarding NF leaves alone:
// everything past the Ethernet, IPv4, and TCP/UDP headers. MAC rewrite,
// TTL decrement, NAT address/port translation, and both checksum updates
// all live in those headers, so a frame pairs with itself across a
// router or NAT hop. Non-IPv4 or truncated frames hash whole.
func payloadKey(frame []byte) uint64 {
	h := fnv.New64a()
	h.Write(payloadOf(frame))
	return h.Sum64()
}

func payloadOf(frame []byte) []byte {
	eh, err := netpkt.ParseEther(frame)
	if err != nil || eh.EtherType != netpkt.EtherTypeIPv4 {
		return frame
	}
	ip := frame[netpkt.EtherHdrLen:]
	iph, hlen, err := netpkt.ParseIPv4Header(ip)
	if err != nil {
		return frame
	}
	rest := ip[hlen:]
	switch iph.Protocol {
	case netpkt.ProtoTCP:
		if len(rest) >= 20 {
			if off := int(rest[12]>>4) * 4; off >= 20 && off <= len(rest) {
				return rest[off:]
			}
		}
	case netpkt.ProtoUDP:
		if len(rest) >= 8 {
			return rest[8:]
		}
	}
	return rest
}

// runCompareLatency pairs the frames of a sent and a received capture by
// payload hash and digests the per-frame one-way latency. Duplicate
// payloads pair FIFO. Both captures must share a time base (e.g. replay
// and capture started by the same wall clock on one host); a constant
// clock offset shifts every quantile equally, and pairs that come out
// negative clamp to zero.
func runCompareLatency(sentPath, recvPath string, asJSON bool) {
	if sentPath == "" || recvPath == "" {
		fatal(fmt.Errorf("-compare-latency needs two file arguments: SENT RECEIVED"))
	}
	sent, err := readTraceFile(sentPath)
	if err != nil {
		fatal(fmt.Errorf("%s: %w", sentPath, err))
	}
	recv, err := readTraceFile(recvPath)
	if err != nil {
		fatal(fmt.Errorf("%s: %w", recvPath, err))
	}
	sentAt := map[uint64][]float64{}
	src := sent.Replay(1)
	for {
		frame, ns, ok := src.Next()
		if !ok {
			break
		}
		k := payloadKey(frame)
		sentAt[k] = append(sentAt[k], ns)
	}
	h := ptrace.NewHist()
	var unmatched uint64
	src = recv.Replay(1)
	for {
		frame, ns, ok := src.Next()
		if !ok {
			break
		}
		k := payloadKey(frame)
		q := sentAt[k]
		if len(q) == 0 {
			unmatched++
			continue
		}
		sentAt[k] = q[1:]
		h.Record(ns - q[0])
	}
	s := h.Summary()
	us := func(ns float64) float64 { return ns / 1e3 }
	if asJSON {
		printJSON(map[string]any{
			"sent": sent.Len(), "received": recv.Len(),
			"matched": s.Count, "unmatched": unmatched,
			"latency_us": map[string]float64{
				"min": us(s.Min), "mean": us(s.Mean),
				"p50": us(s.P50), "p90": us(s.P90),
				"p99": us(s.P99), "p999": us(s.P999),
				"max": us(s.Max),
			},
		})
		return
	}
	fmt.Printf("paired:      %d of %d received frames (%d sent, %d unmatched)\n",
		s.Count, recv.Len(), sent.Len(), unmatched)
	if s.Count == 0 {
		return
	}
	fmt.Printf("latency:     min %.1f µs, mean %.1f µs, max %.1f µs\n",
		us(s.Min), us(s.Mean), us(s.Max))
	fmt.Printf("percentiles: p50 %.1f µs, p90 %.1f µs, p99 %.1f µs, p99.9 %.1f µs\n",
		us(s.P50), us(s.P90), us(s.P99), us(s.P999))
}

// analyzeFlows streams a source and prints a per-flow table: canonical
// 5-tuple, packets, bytes, duration. The key extraction is the flow
// log's (flowlog.KeyFromFrame + conntrack.Canonical), so the table
// groups frames exactly the way a ConnTracker in the datapath would.
func analyzeFlows(src trafficgen.Source, asJSON bool) {
	type flowAgg struct {
		key              conntrack.Key
		packets, bytes   uint64
		firstNS, lastNS  float64
		fwdPkts, revPkts uint64
	}
	flows := map[conntrack.Key]*flowAgg{}
	var order []*flowAgg
	var frames, skipped, totalBytes uint64
	for {
		frame, ns, ok := src.Next()
		if !ok {
			break
		}
		frames++
		totalBytes += uint64(len(frame))
		k, ok := flowlog.KeyFromFrame(frame)
		if !ok {
			skipped++
			continue
		}
		canon, swapped := conntrack.Canonical(k)
		f := flows[canon]
		if f == nil {
			f = &flowAgg{key: canon, firstNS: ns}
			flows[canon] = f
			order = append(order, f)
		}
		f.packets++
		f.bytes += uint64(len(frame))
		f.lastNS = ns
		if swapped {
			f.revPkts++
		} else {
			f.fwdPkts++
		}
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].bytes != order[j].bytes {
			return order[i].bytes > order[j].bytes
		}
		return order[i].firstNS < order[j].firstNS
	})

	if asJSON {
		type flowDoc struct {
			Flow       string  `json:"flow"`
			Packets    uint64  `json:"packets"`
			Bytes      uint64  `json:"bytes"`
			Forward    uint64  `json:"forward_packets"`
			Reverse    uint64  `json:"reverse_packets"`
			DurationUS float64 `json:"duration_us"`
		}
		doc := struct {
			Frames  uint64    `json:"frames"`
			Bytes   uint64    `json:"bytes"`
			Flows   int       `json:"flows"`
			Skipped uint64    `json:"skipped"`
			Table   []flowDoc `json:"table"`
		}{Frames: frames, Bytes: totalBytes, Flows: len(order), Skipped: skipped}
		for _, f := range order {
			doc.Table = append(doc.Table, flowDoc{
				Flow: flowlog.FormatKey(f.key), Packets: f.packets,
				Bytes: f.bytes, Forward: f.fwdPkts, Reverse: f.revPkts,
				DurationUS: (f.lastNS - f.firstNS) / 1e3,
			})
		}
		printJSON(doc)
		return
	}

	fmt.Printf("frames:      %d (%d bytes), %d flows", frames, totalBytes, len(order))
	if skipped > 0 {
		fmt.Printf(", %d non-IP/truncated skipped", skipped)
	}
	fmt.Println()
	fmt.Printf("%-44s %10s %12s %8s %8s %12s\n",
		"flow", "packets", "bytes", "fwd", "rev", "duration µs")
	const maxRows = 40
	for i, f := range order {
		if i == maxRows {
			fmt.Printf("  ... %d more flows\n", len(order)-maxRows)
			break
		}
		fmt.Printf("%-44s %10d %12d %8d %8d %12.1f\n",
			flowlog.FormatKey(f.key), f.packets, f.bytes,
			f.fwdPkts, f.revPkts, (f.lastNS-f.firstNS)/1e3)
	}
}

// analyze streams a source and prints its statistics.
func analyze(src trafficgen.Source, asJSON bool) {
	sizes := map[int]int{}
	protos := map[string]int{}
	flowSet := map[string]int{}
	var totalBytes, n uint64
	var firstNS, lastNS float64
	for {
		frame, ns, ok := src.Next()
		if !ok {
			break
		}
		if n == 0 {
			firstNS = ns
		}
		n++
		totalBytes += uint64(len(frame))
		lastNS = ns
		sizes[len(frame)]++
		eh, err := netpkt.ParseEther(frame)
		if err != nil {
			continue
		}
		switch eh.EtherType {
		case netpkt.EtherTypeARP:
			protos["arp"]++
		case netpkt.EtherTypeIPv4:
			h, _, err := netpkt.ParseIPv4Header(frame[netpkt.EtherHdrLen:])
			if err != nil {
				protos["bad-ip"]++
				continue
			}
			switch h.Protocol {
			case netpkt.ProtoTCP:
				protos["tcp"]++
			case netpkt.ProtoUDP:
				protos["udp"]++
			case netpkt.ProtoICMP:
				protos["icmp"]++
			default:
				protos["other-ip"]++
			}
			flowSet[h.Src.String()+">"+h.Dst.String()]++
		}
	}
	durationNS := lastNS - firstNS

	// Flow skew: top-5 share.
	var counts []int
	for _, c := range flowSet {
		counts = append(counts, c)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(counts)))
	top := 0
	for i := 0; i < len(counts) && i < 5; i++ {
		top += counts[i]
	}

	if asJSON {
		doc := struct {
			Frames     uint64         `json:"frames"`
			Bytes      uint64         `json:"bytes"`
			MeanSize   float64        `json:"mean_size"`
			Gbps       float64        `json:"gbps,omitempty"`
			DurationNS float64        `json:"duration_ns"`
			DurationMS float64        `json:"duration_ms"`
			Sizes      map[string]int `json:"sizes"`
			Protocols  map[string]int `json:"protocols"`
			Flows      int            `json:"flows"`
			Top5Share  float64        `json:"top5_share"`
		}{
			Frames: n, Bytes: totalBytes, MeanSize: float64(totalBytes) / float64(n),
			DurationNS: durationNS, DurationMS: durationNS / 1e6,
			Sizes: map[string]int{}, Protocols: protos,
			Flows: len(flowSet), Top5Share: float64(top) / float64(n),
		}
		if durationNS > 0 {
			doc.Gbps = float64(totalBytes) * 8 / durationNS
		}
		for k, v := range sizes {
			doc.Sizes[fmt.Sprint(k)] = v
		}
		printJSON(doc)
		return
	}

	fmt.Printf("frames:      %d (%.1f MB)\n", n, float64(totalBytes)/1e6)
	fmt.Printf("mean size:   %.1f B\n", float64(totalBytes)/float64(n))
	if durationNS > 0 {
		fmt.Printf("offered:     %.1f Gbps goodput over %.3f ms\n",
			float64(totalBytes)*8/durationNS, durationNS/1e6)
	}
	fmt.Println("sizes:")
	var ks []int
	for k := range sizes {
		ks = append(ks, k)
	}
	sort.Ints(ks)
	for _, k := range ks {
		fmt.Printf("  %5d B  %6.2f%%\n", k, float64(sizes[k])*100/float64(n))
	}
	fmt.Println("protocols:")
	var ps []string
	for p := range protos {
		ps = append(ps, p)
	}
	sort.Strings(ps)
	for _, p := range ps {
		fmt.Printf("  %-8s %6.2f%%\n", p, float64(protos[p])*100/float64(n))
	}
	fmt.Printf("flows:       %d distinct, top-5 carry %.1f%%\n",
		len(flowSet), float64(top)*100/float64(n))
}
