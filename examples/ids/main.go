// IDS + router (Figure 8): a compute-heavier NF — TCP/UDP/ICMP header
// validation in front of the router, VLAN encapsulation behind it — swept
// across core frequency. Also demonstrates the profile-guided metadata
// reordering pass and the IR dump.
package main

import (
	"fmt"
	"log"

	"packetmill/internal/click"
	"packetmill/internal/core"
	_ "packetmill/internal/elements"
	"packetmill/internal/layout"
	"packetmill/internal/nf"
	"packetmill/internal/testbed"
)

func main() {
	cfg := nf.IDSRouter(32)

	// Show the reordering pass on the Copying-model build: profile a
	// short run, then re-pack the Packet descriptor.
	rp, err := core.Parse(cfg)
	if err != nil {
		log.Fatal(err)
	}
	rp.Model = click.Copying
	profile := testbed.Options{FreqGHz: 2.3, RateGbps: 50, Packets: 5000}
	if err := rp.ReorderMetadata(profile, layout.ByAccessCount); err != nil {
		log.Fatal(err)
	}
	for _, n := range rp.Notes() {
		fmt.Println("pass:", n)
	}
	fmt.Println()

	// Frequency sweep, vanilla vs PacketMill.
	mk := func(milled bool) *core.Pipeline {
		p, err := core.Parse(cfg)
		if err != nil {
			log.Fatal(err)
		}
		if milled {
			p.Model = click.XChange
			if err := p.Mill(); err != nil {
				log.Fatal(err)
			}
		} else {
			p.Model = click.Copying
		}
		return p
	}
	vanilla, milled := mk(false), mk(true)
	fmt.Println("freq_ghz\tvanilla_gbps\tpacketmill_gbps\tvanilla_med_us\tpacketmill_med_us")
	for _, f := range []float64{1.2, 1.8, 2.4, 3.0} {
		o := testbed.Options{FreqGHz: f, RateGbps: 100, Packets: 20000}
		v, err := vanilla.Run(o)
		if err != nil {
			log.Fatal(err)
		}
		m, err := milled.Run(o)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%.1f\t%.1f\t%.1f\t%.1f\t%.1f\n", f,
			v.Gbps(), m.Gbps(), v.Latency.Median()/1e3, m.Latency.Median()/1e3)
	}
}
