// Router at 100 Gbps: the paper's headline experiment (Figure 1) — the
// standards-compliant IP router on one 2.3-GHz core, vanilla vs milled,
// swept across offered load to expose the latency knee.
package main

import (
	"fmt"
	"log"

	"packetmill/internal/click"
	"packetmill/internal/core"
	_ "packetmill/internal/elements"
	"packetmill/internal/nf"
	"packetmill/internal/testbed"
)

func main() {
	cfg := nf.Router(32)

	build := func(milled bool) *core.Pipeline {
		p, err := core.Parse(cfg)
		if err != nil {
			log.Fatal(err)
		}
		if milled {
			p.Model = click.XChange
			if err := p.Mill(); err != nil {
				log.Fatal(err)
			}
		} else {
			p.Model = click.Copying
		}
		return p
	}
	vanilla, milled := build(false), build(true)

	fmt.Println("offered_gbps\tvanilla_gbps\tvanilla_p99_us\tpacketmill_gbps\tpacketmill_p99_us")
	for _, load := range []float64{10, 25, 50, 75, 100} {
		o := testbed.Options{FreqGHz: 2.3, RateGbps: load, Packets: 30000}
		v, err := vanilla.Run(o)
		if err != nil {
			log.Fatal(err)
		}
		m, err := milled.Run(o)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%.0f\t%.1f\t%.1f\t%.1f\t%.1f\n",
			load, v.Gbps(), v.Latency.P99()/1e3, m.Gbps(), m.Latency.P99()/1e3)
	}
	fmt.Println("\nPacketMill shifts the knee right: more throughput before latency explodes.")
}
