// Framework shoot-out (Figure 11b): the same one-hop forwarding NF
// expressed in five engines — VPP graph nodes, default FastClick
// (Copying), FastClick-Light (Overlaying), a BESS module pipeline, and
// PacketMill — all driven by the identical simulated testbed. This is
// also the tour of the baseline-engine APIs.
package main

import (
	"fmt"
	"log"

	"packetmill/internal/bess"
	"packetmill/internal/click"
	"packetmill/internal/core"
	_ "packetmill/internal/elements"
	"packetmill/internal/layout"
	"packetmill/internal/netpkt"
	"packetmill/internal/nf"
	"packetmill/internal/testbed"
	"packetmill/internal/vpp"
)

func main() {
	src := netpkt.MAC{0x02, 0, 0, 0, 0, 2}
	dst := netpkt.MAC{0x02, 0, 0, 0, 0, 1}
	opts := func(size int) testbed.Options {
		return testbed.Options{FreqGHz: 1.2, RateGbps: 100, Packets: 20000, FixedSize: size}
	}

	type entry struct {
		name string
		run  func(size int) (*testbed.Result, error)
	}
	engines := []entry{
		{"vpp", func(size int) (*testbed.Result, error) {
			o := opts(size)
			o.Model = click.Overlaying
			o.MetaLayout = layout.VLIBBuffer()
			return testbed.RunEngines(o, func(d *testbed.DUT, c int) (testbed.Engine, error) {
				return vpp.New(d.PortsFor[c][0], vpp.L2Rewrite{Src: src, Dst: dst}), nil
			})
		}},
		{"fastclick", func(size int) (*testbed.Result, error) {
			o := opts(size)
			o.Model = click.Copying
			return testbed.Run(nf.Forwarder(0, 32), o)
		}},
		{"fastclick-light", func(size int) (*testbed.Result, error) {
			o := opts(size)
			o.Model = click.Overlaying
			return testbed.Run(nf.Forwarder(0, 32), o)
		}},
		{"bess", func(size int) (*testbed.Result, error) {
			o := opts(size)
			o.Model = click.Overlaying
			return testbed.RunEngines(o, func(d *testbed.DUT, c int) (testbed.Engine, error) {
				return bess.New(d.PortsFor[c][0], bess.Update{Src: src, Dst: dst}), nil
			})
		}},
		{"packetmill", func(size int) (*testbed.Result, error) {
			p, err := core.Parse(nf.Forwarder(0, 32))
			if err != nil {
				return nil, err
			}
			p.Model = click.XChange
			if err := p.Mill(); err != nil {
				return nil, err
			}
			return p.Run(opts(size))
		}},
	}

	fmt.Println("framework\t64B_gbps\t512B_gbps\t1472B_gbps")
	for _, e := range engines {
		var row []float64
		for _, size := range []int{64, 512, 1472} {
			res, err := e.run(size)
			if err != nil {
				log.Fatalf("%s@%d: %v", e.name, size, err)
			}
			row = append(row, res.Gbps())
		}
		fmt.Printf("%s\t%.1f\t%.1f\t%.1f\n", e.name, row[0], row[1], row[2])
	}
}
