// Quickstart: mill a ten-line forwarder and watch X-Change + the
// source-code passes move the throughput — the paper's Listing 3 NF,
// end to end, in one screen of code.
package main

import (
	"fmt"
	"log"

	"packetmill/internal/click"
	"packetmill/internal/core"
	_ "packetmill/internal/elements"
	"packetmill/internal/testbed"
)

const config = `
// A simple forwarder: receive, swap MACs, transmit (paper Listing 3).
input  :: FromDPDKDevice(PORT 0, N_QUEUES 1, BURST 32);
output :: ToDPDKDevice(PORT 0, BURST 32);
input -> EtherMirror -> output;
`

func main() {
	opts := testbed.Options{FreqGHz: 2.3, RateGbps: 100, Packets: 40000}

	// Vanilla: FastClick defaults — Copying model, dynamic graph,
	// virtual dispatch.
	vanilla, err := core.Parse(config)
	if err != nil {
		log.Fatal(err)
	}
	vanilla.Model = click.Copying
	vres, err := vanilla.Run(opts)
	if err != nil {
		log.Fatal(err)
	}

	// PacketMill: X-Change metadata + devirtualize + constant embedding
	// + static graph.
	milled, err := core.Parse(config)
	if err != nil {
		log.Fatal(err)
	}
	milled.Model = click.XChange
	if err := milled.Mill(); err != nil {
		log.Fatal(err)
	}
	for _, n := range milled.Notes() {
		fmt.Println("pass:", n)
	}
	mres, err := milled.Run(opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%-12s %10s %12s %10s\n", "build", "Gbps", "Mpps", "p99 µs")
	fmt.Printf("%-12s %10.1f %12.2f %10.1f\n", "vanilla",
		vres.Gbps(), vres.Mpps(), vres.Latency.P99()/1e3)
	fmt.Printf("%-12s %10.1f %12.2f %10.1f\n", "packetmill",
		mres.Gbps(), mres.Mpps(), mres.Latency.P99()/1e3)
	fmt.Printf("\nimprovement: %+.1f%% throughput, %+.1f%% p99 latency\n",
		(mres.Gbps()-vres.Gbps())/vres.Gbps()*100,
		(mres.Latency.P99()-vres.Latency.P99())/vres.Latency.P99()*100)
}
