// Multicore NAT: Appendix A.3's stateful NAPT with a cuckoo-hash flow
// table, scaled across cores with RSS — the Figure 10 experiment.
package main

import (
	"fmt"
	"log"

	"packetmill/internal/click"
	"packetmill/internal/core"
	_ "packetmill/internal/elements"
	"packetmill/internal/nf"
	"packetmill/internal/testbed"
)

func main() {
	cfg := nf.NATRouter(32)
	fmt.Println("cores\tvanilla_gbps\tpacketmill_gbps\timprovement_pct")
	for _, cores := range []int{1, 2, 3, 4} {
		o := testbed.Options{
			FreqGHz: 2.3, Cores: cores, RateGbps: 100,
			Packets: 25000, FixedSize: 1024,
		}
		vp, err := core.Parse(cfg)
		if err != nil {
			log.Fatal(err)
		}
		vp.Model = click.Copying
		v, err := vp.Run(o)
		if err != nil {
			log.Fatal(err)
		}
		mp, err := core.Parse(cfg)
		if err != nil {
			log.Fatal(err)
		}
		mp.Model = click.XChange
		if err := mp.Mill(); err != nil {
			log.Fatal(err)
		}
		m, err := mp.Run(o)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%d\t%.1f\t%.1f\t%+.1f%%\n", cores, v.Gbps(), m.Gbps(),
			(m.Gbps()-v.Gbps())/v.Gbps()*100)
	}
}
