// The benchmark harness: one benchmark per table and figure of the
// paper's evaluation (§4), plus the ablations DESIGN.md calls out. Each
// benchmark regenerates its exhibit at a reduced packet budget and
// reports headline numbers as custom metrics, so
//
//	go test -bench=. -benchmem
//
// reproduces the whole evaluation in one run. Full-budget TSVs come from
// cmd/experiments.
package packetmill

import (
	"strconv"
	"testing"

	"packetmill/internal/exp"
)

// benchScale keeps each exhibit's regeneration to benchmark-friendly
// runtimes; cmd/experiments runs the same code at scale 1.0.
const benchScale = 0.15

// runExperiment executes one registered experiment per iteration and
// reports a headline metric extracted from its table.
func runExperiment(b *testing.B, id string, metric func(t *exp.Table) (string, float64)) {
	b.Helper()
	e, ok := exp.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	var tables []*exp.Table
	for i := 0; i < b.N; i++ {
		tables = e.Run(benchScale)
	}
	if len(tables) > 0 && metric != nil {
		name, v := metric(tables[0])
		b.ReportMetric(v, name)
	}
}

// lastFloat pulls column col of the last row matching the given prefix
// cells.
func lastFloat(t *exp.Table, match map[int]string, col int) float64 {
	out := 0.0
	for _, r := range t.Rows {
		ok := true
		for i, want := range match {
			if r[i] != want {
				ok = false
				break
			}
		}
		if ok {
			if v, err := strconv.ParseFloat(r[col], 64); err == nil {
				out = v
			}
		}
	}
	return out
}

// BenchmarkFig1LatencyThroughput regenerates Figure 1 (p99 latency vs
// throughput for the router at 2.3 GHz) and reports PacketMill's
// saturated throughput.
func BenchmarkFig1LatencyThroughput(b *testing.B) {
	runExperiment(b, "fig1", func(t *exp.Table) (string, float64) {
		return "pm-sat-gbps", lastFloat(t, map[int]string{0: "packetmill", 1: "100.0"}, 2)
	})
}

// BenchmarkFig4CodeOptimizations regenerates Figure 4 (five code-
// optimization variants across frequency) and reports the all-opts build's
// 3-GHz throughput.
func BenchmarkFig4CodeOptimizations(b *testing.B) {
	runExperiment(b, "fig4", func(t *exp.Table) (string, float64) {
		return "all@3GHz-gbps", lastFloat(t, map[int]string{0: "all", 1: "3.0"}, 2)
	})
}

// BenchmarkTable1Microarch regenerates Table 1 (LLC loads/misses, IPC,
// Mpps at 3 GHz) and reports the vanilla build's Mpps.
func BenchmarkTable1Microarch(b *testing.B) {
	runExperiment(b, "tab1", func(t *exp.Table) (string, float64) {
		return "vanilla-mpps", lastFloat(t, map[int]string{0: "vanilla"}, 4)
	})
}

// BenchmarkFig5aMetadataModels regenerates Figure 5a (the three metadata
// models on one NIC) and reports X-Change's 3-GHz throughput.
func BenchmarkFig5aMetadataModels(b *testing.B) {
	runExperiment(b, "fig5a", func(t *exp.Table) (string, float64) {
		return "xchg@3GHz-gbps", lastFloat(t, map[int]string{0: "x-change", 1: "3.0"}, 2)
	})
}

// BenchmarkFig5bTwoNICs regenerates Figure 5b (two NICs, one core) and
// reports X-Change's total throughput — the >100-Gbps headline.
func BenchmarkFig5bTwoNICs(b *testing.B) {
	runExperiment(b, "fig5b", func(t *exp.Table) (string, float64) {
		return "xchg-total-gbps", lastFloat(t, map[int]string{0: "x-change", 1: "3.0"}, 2)
	})
}

// BenchmarkFig6PacketSize regenerates Figure 6 (router throughput and PPS
// vs packet size at 2.3 GHz) and reports PacketMill's 64-B rate.
func BenchmarkFig6PacketSize(b *testing.B) {
	runExperiment(b, "fig6", func(t *exp.Table) (string, float64) {
		return "pm-64B-mpps", lastFloat(t, map[int]string{0: "packetmill", 1: "64"}, 3)
	})
}

// BenchmarkFig7WorkPackage regenerates Figure 7 (the W × S improvement
// surface for N ∈ {1,5}) and reports the lightest-point improvement.
func BenchmarkFig7WorkPackage(b *testing.B) {
	runExperiment(b, "fig7", func(t *exp.Table) (string, float64) {
		return "light-improve-pct", lastFloat(t, map[int]string{0: "1", 1: "0", 2: "0"}, 5)
	})
}

// BenchmarkFig8IDSRouter regenerates Figure 8 (IDS+router across
// frequency) and reports PacketMill's 3-GHz throughput.
func BenchmarkFig8IDSRouter(b *testing.B) {
	runExperiment(b, "fig8", func(t *exp.Table) (string, float64) {
		return "pm@3GHz-gbps", lastFloat(t, map[int]string{0: "packetmill", 1: "3.0"}, 2)
	})
}

// BenchmarkFig9MemoryFootprint regenerates Figure 9 (the N=1, W=4 memory
// slice) and reports vanilla's LLC miss percentage at S=20 MB.
func BenchmarkFig9MemoryFootprint(b *testing.B) {
	runExperiment(b, "fig9", func(t *exp.Table) (string, float64) {
		return "miss-pct@20MB", lastFloat(t, map[int]string{0: "vanilla", 1: "20"}, 3)
	})
}

// BenchmarkFig10MulticoreNAT regenerates Figure 10 (NAT across 1–4 cores)
// and reports PacketMill's 4-core throughput.
func BenchmarkFig10MulticoreNAT(b *testing.B) {
	runExperiment(b, "fig10", func(t *exp.Table) (string, float64) {
		return "pm-4core-gbps", lastFloat(t, map[int]string{0: "packetmill", 1: "4"}, 2)
	})
}

// BenchmarkFig11aDPDKApps regenerates Figure 11a (l2fwd vs l2fwd-xchg vs
// FastClick vs PacketMill) and reports l2fwd-xchg's 64-B throughput.
func BenchmarkFig11aDPDKApps(b *testing.B) {
	runExperiment(b, "fig11a", func(t *exp.Table) (string, float64) {
		return "l2fwd-xchg-64B-gbps", lastFloat(t, map[int]string{0: "l2fwd-xchg", 1: "64"}, 2)
	})
}

// BenchmarkFig11bFrameworks regenerates Figure 11b (VPP, FastClick,
// FastClick-Light, BESS, PacketMill) and reports PacketMill's 64-B lead.
func BenchmarkFig11bFrameworks(b *testing.B) {
	runExperiment(b, "fig11b", func(t *exp.Table) (string, float64) {
		return "pm-64B-gbps", lastFloat(t, map[int]string{0: "packetmill", 1: "64"}, 2)
	})
}

// BenchmarkAblationDescriptorPool sweeps the X-Change descriptor-pool
// size (cache-residency cliff).
func BenchmarkAblationDescriptorPool(b *testing.B) {
	runExperiment(b, "abl-pool", func(t *exp.Table) (string, float64) {
		return "fifo-32k-gbps", lastFloat(t, map[int]string{0: "fifo-cycling", 1: "32768"}, 2)
	})
}

// BenchmarkAblationReorderCriterion compares LTO and the two reordering
// criteria (§3.2.2's implemented vs future-work sort).
func BenchmarkAblationReorderCriterion(b *testing.B) {
	runExperiment(b, "abl-reorder", func(t *exp.Table) (string, float64) {
		return "lto+reorder-gbps", lastFloat(t, map[int]string{0: "lto+reorder-count"}, 1)
	})
}

// BenchmarkAblationBurst sweeps the BURST constant.
func BenchmarkAblationBurst(b *testing.B) {
	runExperiment(b, "abl-burst", func(t *exp.Table) (string, float64) {
		return "burst32-gbps", lastFloat(t, map[int]string{0: "32"}, 1)
	})
}

// BenchmarkAblationDDIO sweeps the DDIO window width.
func BenchmarkAblationDDIO(b *testing.B) {
	runExperiment(b, "abl-ddio", func(t *exp.Table) (string, float64) {
		return "ways8-gbps", lastFloat(t, map[int]string{0: "8"}, 1)
	})
}
