// Package packetmill is a full reproduction, in pure Go, of "PacketMill:
// Toward Per-Core 100-Gbps Networking" (ASPLOS 2021): the X-Change
// metadata-management model, the configuration-driven code-optimization
// passes, the FastClick-style modular packet-processing framework they
// apply to, and the simulated Xeon + 100-GbE testbed the evaluation runs
// on. See README.md for a tour, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for the reproduced tables and figures.
//
// The root package carries the benchmark harness (bench_test.go): one
// benchmark per table and figure of the paper's evaluation section.
package packetmill
