module packetmill

go 1.23
