# Test tiers. `make test` is the default gate: tier-1 plus the
# short-budget chaos soak. Tier-2 adds vet and the race detector.
GO ?= go

.PHONY: test tier1 tier2 soak fuzz bench

test: tier1 soak

# Tier-1 (the ROADMAP gate): everything builds, every test passes.
tier1:
	$(GO) build ./...
	$(GO) test ./...

# Tier-2: static analysis plus the race detector over the full suite.
tier2:
	$(GO) vet ./...
	$(GO) test -race ./...

# Short-budget chaos soak: randomized fault schedules through the
# testbed (see internal/testbed/chaos_test.go and EXPERIMENTS.md).
soak:
	$(GO) test -run TestChaosSoak -count=1 ./internal/testbed

# Benchmark sweep: regenerate every exhibit at a reduced budget and write
# per-exhibit wall-clock and allocation figures to BENCH_experiments.json.
bench:
	$(GO) run ./cmd/experiments -run all -scale 0.15 -bench BENCH_experiments.json

# Brief fuzz passes over the two grammar front ends.
fuzz:
	$(GO) test -run=NONE -fuzz=FuzzParse -fuzztime=30s ./internal/click
	$(GO) test -run=NONE -fuzz=FuzzFaultSchedule -fuzztime=30s ./internal/faults
