# Test tiers. `make test` is the default gate: tier-1 plus the
# short-budget chaos soak. Tier-2 adds vet and the race detector.
GO ?= go

.PHONY: test tier1 tier2 soak fuzz bench bench-baseline bench-check overload-demo pcap-demo trace-demo

test: tier1 soak

# Tier-1 (the ROADMAP gate): everything builds, every test passes.
tier1:
	$(GO) build ./...
	$(GO) test ./...

# Tier-2: static analysis plus the race detector over the full suite.
tier2:
	$(GO) vet ./...
	$(GO) test -race ./...

# Short-budget chaos soak: randomized fault schedules through the
# testbed (see internal/testbed/chaos_test.go and EXPERIMENTS.md).
soak:
	$(GO) test -run TestChaosSoak -count=1 ./internal/testbed

# Benchmark sweep: regenerate every exhibit at a reduced budget and write
# per-exhibit wall-clock and allocation figures — plus the gated datapath
# section (simulated pps/core, allocs/packet) — to BENCH_experiments.json.
bench:
	$(GO) run ./cmd/experiments -run all -scale 0.15 -bench BENCH_experiments.json

# Refresh the committed performance baseline. Run this (and commit the
# result) when a deliberate change moves the performance model.
bench-baseline:
	$(GO) run ./cmd/experiments -run all -scale 0.15 -bench BENCH_baseline.json

# The perf-trajectory gate: fresh bench against the committed baseline.
# Fails on >10% simulated pps/core regression or any allocs/packet
# increase; wall-clock is reported but not gated.
bench-check: bench
	$(GO) run ./cmd/benchcheck -baseline BENCH_baseline.json -fresh BENCH_experiments.json

# Overload-control demo: drive the milled WorkPackage forwarder at 4x
# its capacity with a 10% high-priority share and watch the control
# plane shed at the RX boundary (attributed drops, bounded hi-class
# p99) instead of overflowing the ring blind. The same scenario runs as
# TestOverloadPriorityExhibit in CI.
overload-demo:
	$(GO) run ./cmd/packetmill -config configs/overload-demo.click -model x-change \
		-freq 1.2 -rate 40 -packets 20000 -traffic priority \
		-overload-policy priority -overload-high 0.1 -overload-low 0.005 \
		-overload-degrade 0.012 -overload-dwell 5us
	$(GO) test -race -count=1 -run 'TestOverloadPriorityExhibit|TestOverloadShedVsUncontrolled' -v ./internal/testbed

# End-to-end capture demo over real sockets: generate a trace as a pcap,
# compute the expected output by running the milled NAT router in -io
# pcap mode, then forward the same pcap over loopback datagram sockets
# (-io wire, with pktgen replaying and capturing on either side) and
# diff the live capture against the expected one (timestamps ignored).
DEMO := build/pcap-demo

pcap-demo:
	rm -rf $(DEMO) && mkdir -p $(DEMO)
	$(GO) build -o $(DEMO)/pktgen ./cmd/pktgen
	$(GO) build -o $(DEMO)/packetmill ./cmd/packetmill
	$(DEMO)/pktgen -write $(DEMO)/in.pcap -trace campus -count 2000 -flow-count 64 -seed 7 -rate 1
	$(DEMO)/packetmill -config configs/nat-router.click -mill -model x-change \
		-io pcap -pcap-in $(DEMO)/in.pcap -pcap-out $(DEMO)/expected.pcap
	set -e; \
	$(DEMO)/pktgen -capture $(DEMO)/got.pcap -on unix:$(DEMO)/cap.sock -idle 2s & cap=$$!; \
	$(DEMO)/packetmill -config configs/nat-router.click -mill -model x-change \
		-io wire -wire-rx unix:$(DEMO)/rx.sock -wire-tx unix:$(DEMO)/cap.sock \
		-wire-idle 1500ms & mill=$$!; \
	$(DEMO)/pktgen -replay $(DEMO)/in.pcap -to unix:$(DEMO)/rx.sock -pps 20000; \
	wait $$mill && wait $$cap
	$(DEMO)/pktgen -compare $(DEMO)/got.pcap $(DEMO)/expected.pcap

# Flight-recorder demo: run the milled router with per-packet tracing
# and the full JSON report, then print where to load the results. The
# trace is Chrome trace-event JSON — drop it into https://ui.perfetto.dev
# (or chrome://tracing) to see sampled packets as spans per element.
TRACEDEMO := build/trace-demo

trace-demo:
	rm -rf $(TRACEDEMO) && mkdir -p $(TRACEDEMO)
	$(GO) build -o $(TRACEDEMO)/packetmill ./cmd/packetmill
	$(TRACEDEMO)/packetmill -builtin router -mill -model x-change -packets 20000 \
		-trace-out $(TRACEDEMO)/trace.json -trace-sample 16 \
		-report json > $(TRACEDEMO)/report.json
	@echo "report: $(TRACEDEMO)/report.json (percentiles under .latency_us, per-element under .elements[].latency_us)"
	@echo "trace:  $(TRACEDEMO)/trace.json  (open https://ui.perfetto.dev and drag the file in)"

# Brief fuzz passes over the two grammar front ends.
fuzz:
	$(GO) test -run=NONE -fuzz=FuzzParse -fuzztime=30s ./internal/click
	$(GO) test -run=NONE -fuzz=FuzzFaultSchedule -fuzztime=30s ./internal/faults
