
// Forwarder + connection tracker
input :: FromDPDKDevice(PORT 0, N_QUEUES 1, BURST 32);
output :: ToDPDKDevice(PORT 0, BURST 32);
input -> ConnTracker(CAPACITY 65536)
      -> EtherRewrite(SRC 02:00:00:00:00:02, DST 02:00:00:00:00:01)
      -> output;
