
// Listing 3 forwarder
input :: FromDPDKDevice(PORT 0, N_QUEUES 1, BURST 32);
output :: ToDPDKDevice(PORT 0, BURST 32);
input -> EtherMirror -> output;
