
// IDS + router + VLAN (Appendix A.3)
input :: FromDPDKDevice(PORT 0, N_QUEUES 1, BURST 32);
output :: ToDPDKDevice(PORT 0, BURST 32);
c :: Classifier(12/0806 20/0001, 12/0806 20/0002, 12/0800, -);
ids :: CheckTCPHeader(14);
idsu :: CheckUDPHeader(14);
idsi :: CheckICMPHeader(14);
rt :: LookupIPRoute(10.1.0.0/16 0, 10.0.0.0/8 0, 0.0.0.0/0 10.1.0.1 0);
arpq :: ARPQuerier(10.1.0.254, 02:00:00:00:00:02);

input -> c;
c[0] -> ARPResponder(10.1.0.254 02:00:00:00:00:02) -> output;
c[1] -> [1]arpq;
c[2] -> ids -> idsu -> idsi -> Strip(14) -> CheckIPHeader(0) -> rt;
c[3] -> Discard;
rt[0] -> DecIPTTL -> [0]arpq;
arpq[0] -> VLANEncap(VLAN_ID 42, VLAN_PCP 0) -> output;
