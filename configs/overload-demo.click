// Overload-demo forwarder: the heavy WorkPackage NF the overload
// exhibits drive past capacity (~10 Gbps/core at 1.2 GHz). The small
// burst keeps the PMD responsive while the control plane sheds at the
// RX boundary.
input :: FromDPDKDevice(PORT 0, N_QUEUES 1, BURST 4);
output :: ToDPDKDevice(PORT 0, BURST 4);
input -> WorkPackage(S 16, N 5, W 200)
      -> EtherRewrite(SRC 02:00:00:00:00:02, DST 02:00:00:00:00:01)
      -> output;
